"""Unit tests for key utilities and region descriptors."""

import pytest

from repro.kvstore.keys import (
    Cell,
    KeyRange,
    region_id,
    row_key,
    split_points_for,
)
from repro.kvstore.region import (
    ONLINE,
    OPENING,
    RECOVERING,
    Region,
    RegionDescriptor,
)


class TestRowKeys:
    def test_fixed_width_preserves_order(self):
        keys = [row_key(i) for i in (0, 9, 10, 99, 100, 5000)]
        assert keys == sorted(keys)

    def test_split_points_even(self):
        points = split_points_for(1000, 4)
        assert points == [row_key(250), row_key(500), row_key(750)]

    def test_single_region_no_splits(self):
        assert split_points_for(1000, 1) == []

    def test_invalid_region_count(self):
        with pytest.raises(ValueError):
            split_points_for(1000, 0)


class TestKeyRange:
    def test_contains_half_open(self):
        r = KeyRange("b", "d")
        assert not r.contains("a")
        assert r.contains("b")
        assert r.contains("c")
        assert not r.contains("d")

    def test_unbounded_end(self):
        r = KeyRange("m", None)
        assert r.contains("zzzz")
        assert not r.contains("a")


class TestCellWire:
    def test_roundtrip(self):
        cell = Cell("r", "f", 7, {"nested": [1, 2]})
        assert Cell.from_wire(cell.to_wire()) == cell

    def test_tombstone_roundtrip(self):
        cell = Cell("r", "f", 7, None, tombstone=True)
        back = Cell.from_wire(cell.to_wire())
        assert back.tombstone and back.value is None


class TestRegionDescriptor:
    def test_wire_roundtrip(self):
        d = RegionDescriptor(table="t", start="a", end="m")
        assert RegionDescriptor.from_wire(d.to_wire()) == d
        assert d.region_id == region_id("t", KeyRange("a", "m"))

    def test_data_dir_handles_empty_start(self):
        d = RegionDescriptor(table="t", start="", end="m")
        assert d.data_dir() == "/data/t/_first/"


class TestRegionWriteGate:
    def make(self, state):
        return Region(
            descriptor=RegionDescriptor(table="t", start="", end=None), state=state
        )

    def test_online_accepts_all_writes(self):
        region = self.make(ONLINE)
        assert region.accepts_writes(from_recovery=False)
        assert region.accepts_writes(from_recovery=True)

    def test_recovering_accepts_only_recovery_writes(self):
        region = self.make(RECOVERING)
        assert not region.accepts_writes(from_recovery=False)
        assert region.accepts_writes(from_recovery=True)

    def test_opening_rejects_everything(self):
        region = self.make(OPENING)
        assert not region.accepts_writes(from_recovery=False)
        assert not region.accepts_writes(from_recovery=True)
