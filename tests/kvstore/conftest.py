"""Shared mini-cluster fixture for kvstore integration tests."""

import pytest

from repro.config import KvSettings, ZkSettings
from repro.dfs import DataNode, NameNode
from repro.kvstore import KvClient, Master, RegionServer
from repro.sim import Kernel, Network, Node
from repro.zk import ZkService


class MiniCluster:
    """ZK + namenode + N (datanode, region server) machines + master."""

    def __init__(self, n_servers=2, seed=4, kv_settings=None, table_splits=("m",)):
        self.kernel = Kernel(seed=seed)
        self.net = Network(self.kernel)
        self.settings = kv_settings or KvSettings(memstore_flush_entries=100_000)
        self.zk = ZkService(
            self.kernel,
            self.net,
            settings=ZkSettings(session_timeout=1.0, tick_interval=0.2),
        )
        self.namenode = NameNode(self.kernel, self.net)
        self.datanodes = []
        self.servers = []
        for i in range(n_servers):
            dn = DataNode(self.kernel, self.net, f"dn{i}")
            rs = RegionServer(
                self.kernel,
                self.net,
                f"rs{i}",
                settings=self.settings,
                local_datanode=dn.addr,
            )
            self.datanodes.append(dn)
            self.servers.append(rs)
        self.master = Master(self.kernel, self.net, settings=self.settings)
        self.app = Node(self.kernel, self.net, "app")
        self.client = KvClient(self.app, settings=self.settings)

        starts = [rs.spawn(rs.start(), name="start") for rs in self.servers]
        starts.append(self.master.spawn(self.master.start(), name="start"))
        for p in starts:
            p.defuse()
        self.kernel.run(until=1.0)
        assert all(rs.started for rs in self.servers)
        regions = self.run(
            self.call(self.master.addr, "create_table", table="t", split_points=list(table_splits))
        )
        self.regions = regions

    def call(self, dst, method, **kw):
        def gen():
            result = yield self.app.call(dst, method, timeout=30.0, **kw)
            return result

        return gen()

    def run(self, gen):
        """Drive a generator to completion on the app node."""
        return self.kernel.run_until_complete(self.kernel.process(gen))

    def crash_machine(self, index):
        """Crash a region server together with its co-located datanode."""
        self.servers[index].crash()
        self.datanodes[index].crash()

    def put(self, txn_ts, rows, value_prefix="v"):
        """Flush one write-set of (row -> value) at version txn_ts."""
        cells = [(row, "f", txn_ts, f"{value_prefix}-{row}-{txn_ts}") for row in rows]
        return self.run(self.client.flush_write_set("t", txn_ts, cells))

    def get(self, row, max_version, **kw):
        return self.run(self.client.get("t", row, "f", max_version, **kw))


@pytest.fixture
def mini():
    return MiniCluster()
