"""Server restart: a crashed machine rejoins the cluster."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key


def build(seed=171):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 3000
    config.kv.n_regions = 6
    config.kv.wal_sync_interval = 300.0
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.server_heartbeat_interval = 0.5
    config.zk.session_timeout = 1.0
    config.zk.tick_interval = 0.2
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


def write_rows(cluster, handle, rows, tag):
    def txn():
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx, wait_flush=True)

    cluster.run(txn())


def read_row(cluster, handle, i):
    def txn():
        ctx = yield from handle.txn.begin()
        return (yield from handle.txn.read(ctx, TABLE, row_key(i)))

    return cluster.run(txn())


def test_restarted_server_rejoins_and_takes_regions():
    cluster = build()
    handle = cluster.add_client()
    rows = list(range(0, 3000, 101))
    write_rows(cluster, handle, rows, "before")

    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 12.0)  # failover + recovery
    assert all(cluster.cluster_status()["online"].values())

    cluster.restart_server(0)
    cluster.run_until(cluster.kernel.now + 2.0)
    status = cluster.cluster_status()
    assert sorted(status["live_servers"]) == ["rs0", "rs1"]

    moves = cluster.run(cluster.rpc("master", "balance"))
    assert moves, "balancing must move regions onto the rejoined server"
    status = cluster.cluster_status()
    assert "rs0" in set(status["assignments"].values())
    assert all(status["online"].values())

    for i in rows:
        assert read_row(cluster, handle, i) == f"before-{i}"


def test_restarted_server_is_recoverable_again():
    """The rejoined incarnation writes to a fresh WAL epoch; crashing it
    again recovers its new data like any server's."""
    cluster = build(seed=172)
    handle = cluster.add_client()
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 12.0)
    cluster.restart_server(0)
    cluster.run_until(cluster.kernel.now + 2.0)
    cluster.run(cluster.rpc("master", "balance"))

    rows = list(range(0, 3000, 67))
    write_rows(cluster, handle, rows, "second-life")
    cluster.crash_server(0)  # crash the restarted incarnation, data unsynced
    cluster.run_until(cluster.kernel.now + 15.0)
    status = cluster.cluster_status()
    assert all(status["online"].values())
    for i in rows:
        assert read_row(cluster, handle, i) == f"second-life-{i}"


def test_restart_while_alive_is_noop():
    cluster = build(seed=173)
    rs = cluster.servers[0]
    before_epoch = rs.wal.epoch
    cluster.run(rs.restart())
    assert rs.wal.epoch == before_epoch  # untouched
    assert rs.started
