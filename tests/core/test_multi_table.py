"""Multi-table transactions and cross-table recovery."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key

ORDERS = "orders"


def build(seed=181):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 2000
    config.kv.n_regions = 4
    config.kv.wal_sync_interval = 300.0
    config.recovery.client_heartbeat_interval = 0.5
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    cluster.create_table(ORDERS, split_points=["order5000"])
    return cluster


def read(cluster, handle, table, row):
    def txn():
        ctx = yield from handle.txn.begin()
        return (yield from handle.txn.read(ctx, table, row))

    return cluster.run(txn())


def test_transaction_spans_tables_atomically():
    cluster = build()
    handle = cluster.add_client()

    def txn():
        ctx = yield from handle.txn.begin()
        handle.txn.write(ctx, TABLE, row_key(5), "customer-updated")
        handle.txn.write(ctx, ORDERS, "order0001", "pending")
        handle.txn.write(ctx, ORDERS, "order9001", "shipped")
        yield from handle.txn.commit(ctx, wait_flush=True)
        return ctx

    ctx = cluster.run(txn())
    assert ctx.commit_ts is not None
    assert read(cluster, handle, TABLE, row_key(5)) == "customer-updated"
    assert read(cluster, handle, ORDERS, "order0001") == "pending"
    assert read(cluster, handle, ORDERS, "order9001") == "shipped"


def test_cross_table_writes_recovered_after_server_crash():
    cluster = build(seed=182)
    handle = cluster.add_client()

    def txn(n):
        ctx = yield from handle.txn.begin()
        handle.txn.write(ctx, TABLE, row_key(n), f"cust-{n}")
        handle.txn.write(ctx, ORDERS, f"order{n:04d}", f"order-{n}")
        handle.txn.write(ctx, ORDERS, f"order{9000 + n:04d}", f"late-{n}")
        yield from handle.txn.commit(ctx, wait_flush=True)
        return ctx

    for n in range(12):
        cluster.run(txn(n))

    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)
    status = cluster.cluster_status()
    assert all(status["online"].values())

    for n in range(12):
        assert read(cluster, handle, TABLE, row_key(n)) == f"cust-{n}"
        assert read(cluster, handle, ORDERS, f"order{n:04d}") == f"order-{n}"
        assert read(cluster, handle, ORDERS, f"order{9000 + n:04d}") == f"late-{n}"


def test_cross_table_writes_recovered_after_client_crash():
    cluster = build(seed=183)
    victim = cluster.add_client("victim")
    reader = cluster.add_client("reader")

    def commit_and_die():
        ctx = yield from victim.txn.begin()
        victim.txn.write(ctx, TABLE, row_key(77), "cross-cust")
        victim.txn.write(ctx, ORDERS, "order0077", "cross-order")
        yield from victim.txn.commit(ctx)
        victim.node.crash()

    proc = cluster.kernel.process(commit_and_die())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 6.0)
    rm = cluster.rm_status()
    assert rm["client_recoveries"] == 1
    assert read(cluster, reader, TABLE, row_key(77)) == "cross-cust"
    assert read(cluster, reader, ORDERS, "order0077") == "cross-order"


def test_duplicate_table_rejected():
    cluster = build(seed=184)
    with pytest.raises(Exception, match="already exists"):
        cluster.create_table(ORDERS)
