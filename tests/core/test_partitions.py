"""Network partitions are crash failures (Section 3.1).

A partitioned client cannot reach the recovery manager: the manager
declares it dead and replays its committed write-sets, while the client
terminates itself once its heartbeats fail persistently -- so its stale
flushes can never race the recovery.  A partitioned region server loses
its coordination-service session, and the master runs ordinary server
failover.
"""

from repro import TABLE
from repro.kvstore.keys import row_key
from repro.sim.failures import FailureSchedule
from tests.core.conftest import commit_rows, read_row, recovery_cluster


def test_partitioned_client_terminates_itself_and_is_recovered():
    cluster = recovery_cluster(seed=51, client_hb=0.5, missed_limit=3)
    victim = cluster.add_client("victim")
    observer = cluster.add_client("watcher")
    rows = list(range(0, 2000, 61))

    holder = {}

    def commit_then_partition():
        ctx = yield from victim.txn.begin()
        for i in rows:
            victim.txn.write(ctx, TABLE, row_key(i), f"cutoff-{i}")
        yield from victim.txn.commit(ctx)  # durable in the TM log
        holder["ctx"] = ctx
        # Cut the client off from everything (zk, servers, tm) mid-flush.
        everyone = [n for n in cluster.net.nodes if n != victim.node.addr]
        cluster.net.partition([victim.node.addr], everyone)

    proc = cluster.kernel.process(commit_then_partition())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 10.0)

    # The client terminated itself after persistent heartbeat failure...
    assert victim.agent.self_terminated
    assert not victim.node.alive
    # ...and the recovery manager replayed its committed write-set.
    rm = cluster.rm_status()
    assert rm["client_recoveries"] == 1
    assert "victim" not in rm["clients"]
    for i in rows:
        assert read_row(cluster, observer, i) == f"cutoff-{i}"


def test_partitioned_server_handled_as_crash():
    cluster = recovery_cluster(seed=52)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 73))
    commit_rows(cluster, handle, rows, "island")

    schedule = FailureSchedule()
    everyone = [
        n for n in cluster.net.nodes
        if n not in (cluster.servers[0].addr, cluster.datanodes[0].addr)
    ]
    schedule.partition(
        0.1,
        [cluster.servers[0].addr, cluster.datanodes[0].addr],
        everyone,
    )
    armed = schedule.inject(cluster.kernel, cluster.net)
    assert any("partition" in line for line in armed)

    cluster.run_until(cluster.kernel.now + 15.0)
    status = cluster.cluster_status()
    # The isolated server's session expired; its regions failed over and
    # were transactionally recovered on the survivor.
    assert status["failures_handled"] == 1
    assert set(status["assignments"].values()) == {"rs1"}
    assert all(status["online"].values())
    for i in rows:
        assert read_row(cluster, handle, i) == f"island-{i}"


def test_healed_partition_client_stays_dead():
    """Once declared dead and recovered, a returning client's messages are
    irrelevant -- it terminated itself during the partition, so nothing
    stale can arrive after healing."""
    cluster = recovery_cluster(seed=53, client_hb=0.5, missed_limit=3)
    victim = cluster.add_client("victim")
    observer = cluster.add_client("watcher")
    rows = [10, 20, 30]

    def commit_then_cut():
        ctx = yield from victim.txn.begin()
        for i in rows:
            victim.txn.write(ctx, TABLE, row_key(i), f"flap-{i}")
        yield from victim.txn.commit(ctx)
        everyone = [n for n in cluster.net.nodes if n != victim.node.addr]
        cluster.net.partition([victim.node.addr], everyone)

    proc = cluster.kernel.process(commit_then_cut())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 8.0)
    cluster.net.heal()
    cluster.run_until(cluster.kernel.now + 3.0)
    assert not victim.node.alive  # healing does not resurrect it
    for i in rows:
        assert read_row(cluster, observer, i) == f"flap-{i}"


def test_failure_schedule_crash_and_custom():
    cluster = recovery_cluster(seed=54)
    handle = cluster.add_client()
    commit_rows(cluster, handle, [1, 2, 3], "sched")
    fired = []
    schedule = (
        FailureSchedule()
        .crash(0.5, cluster.servers[0].addr, cluster.datanodes[0].addr)
        .custom(1.0, lambda: fired.append(cluster.kernel.now), label="probe")
    )
    schedule.inject(cluster.kernel, cluster.net)
    cluster.run_until(cluster.kernel.now + 12.0)
    assert fired and not cluster.servers[0].alive
    assert read_row(cluster, handle, 1) == "sched-1"
