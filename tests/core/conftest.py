"""Shared helpers for recovery-middleware integration tests."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key


def recovery_cluster(
    seed=21,
    n_servers=2,
    wal_sync_interval=300.0,
    server_hb=1.0,
    client_hb=0.5,
    missed_limit=3,
    n_rows=2_000,
    n_regions=4,
    truncate=True,
    replication=2,
):
    """A cluster tuned so the store alone would lose data on failure.

    The WAL group-sync interval is huge, so only the recovery agents'
    heartbeat syncs persist anything -- crash inside a heartbeat interval
    and the memstore content is gone unless the middleware replays it.
    """
    config = ClusterConfig(seed=seed)
    config.kv.n_region_servers = n_servers
    config.kv.n_regions = n_regions
    config.kv.wal_sync_interval = wal_sync_interval
    config.workload.n_rows = n_rows
    config.recovery.server_heartbeat_interval = server_hb
    config.recovery.client_heartbeat_interval = client_hb
    config.recovery.missed_heartbeat_limit = missed_limit
    config.recovery.truncate_log = truncate
    config.dfs.replication = replication
    config.zk.session_timeout = 1.0
    config.zk.tick_interval = 0.2
    cluster = SimCluster(config)
    cluster.start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


def commit_rows(cluster, handle, rows, tag, wait_flush=True):
    """Run one update transaction writing tag-values to ``rows``."""

    def txn():
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx, wait_flush=wait_flush)
        return ctx

    return cluster.run(txn())


def read_row(cluster, handle, i, max_retries=None):
    """Snapshot-read one row through a fresh transaction."""

    def txn():
        ctx = yield from handle.txn.begin()
        value = yield from handle.txn.read(ctx, TABLE, row_key(i))
        return value

    return cluster.run(txn())


def rows_on_server(cluster, server_index, candidates):
    """Subset of ``candidates`` whose region lives on servers[server_index]."""
    handle_addr = cluster.servers[server_index].addr
    status = cluster.cluster_status()
    out = []
    for i in candidates:
        key = row_key(i)
        for region in cluster.servers[server_index].regions.values():
            if region.contains(key):
                out.append(i)
                break
    assert status["assignments"], "no regions assigned"
    return out
