"""Integration tests: client-failure recovery (Section 3.1, Algorithm 2),
log truncation, and recovery-manager failover (Section 3.3)."""

from repro import TABLE
from repro.kvstore.keys import row_key
from tests.core.conftest import commit_rows, read_row, recovery_cluster


def crash_after_commit(cluster, handle, rows, tag):
    """Commit a txn and crash the client before its flush can start.

    Returns the committed context.  Uses a zero-delay crash scheduled right
    after the commit reply, so the write-set exists only in the TM log.
    """
    holder = {}

    def committing():
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx)  # returns at the log-commit point
        holder["ctx"] = ctx
        handle.node.crash()  # dies with the flush still pending
        return ctx

    proc = cluster.kernel.process(committing())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 0.5)
    assert "ctx" in holder, "commit did not complete before the crash"
    return holder["ctx"]


def test_client_crash_after_commit_is_replayed():
    """Committed-but-unflushed write-sets are replayed from the TM log when
    the client dies (the paper's client-failure case)."""
    cluster = recovery_cluster(seed=41, client_hb=0.5, missed_limit=3)
    victim = cluster.add_client("victim")
    survivor = cluster.add_client("survivor")
    rows = list(range(0, 2000, 71))
    ctx = crash_after_commit(cluster, victim, rows, "orphan")

    # Detection takes missed_limit * interval; give recovery room.
    cluster.run_until(cluster.kernel.now + 5.0)
    rm = cluster.rm_status()
    assert rm["client_recoveries"] == 1
    assert rm["replayed_write_sets"] >= 1
    assert "victim" not in rm["clients"]  # unregistered after recovery

    for i in rows:
        assert read_row(cluster, survivor, i) == f"orphan-{i}"
    assert ctx.commit_ts is not None


def test_uncommitted_work_of_dead_client_is_not_replayed():
    """A write-set never committed to the TM log dies with the client --
    per the paper, those transactions count as aborted."""
    cluster = recovery_cluster(seed=42, client_hb=0.5)
    victim = cluster.add_client("victim")
    survivor = cluster.add_client("survivor")

    def doomed():
        ctx = yield from victim.txn.begin()
        victim.txn.write(ctx, TABLE, row_key(123), "never-committed")
        # Crash before commit is even attempted.
        victim.node.crash()
        return ctx

    proc = cluster.kernel.process(doomed())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 5.0)
    assert read_row(cluster, survivor, 123) == "init-123"
    rm = cluster.rm_status()
    assert rm["replayed_write_sets"] == 0


def test_clean_shutdown_needs_no_recovery():
    cluster = recovery_cluster(seed=43, client_hb=0.5)
    handle = cluster.add_client("tidy")
    rows = [5, 10, 15]
    commit_rows(cluster, handle, rows, "tidy")
    cluster.run(handle.agent.shutdown())
    cluster.run_until(cluster.kernel.now + 4.0)
    rm = cluster.rm_status()
    assert "tidy" not in rm["clients"]
    assert rm["client_recoveries"] == 0


def test_unregistered_client_does_not_block_global_tf():
    """After a clean shutdown the departed client's threshold must stop
    constraining T_F (Algorithm 2's unregister)."""
    cluster = recovery_cluster(seed=44, client_hb=0.5)
    idler = cluster.add_client("idler")
    worker = cluster.add_client("worker")
    commit_rows(cluster, worker, [1, 2, 3], "w1")
    cluster.run(idler.agent.shutdown())
    ctx = commit_rows(cluster, worker, [4, 5, 6], "w2")
    cluster.run_until(cluster.kernel.now + 3.0)
    rm = cluster.rm_status()
    assert rm["global_tf"] >= ctx.commit_ts


def test_log_truncation_bounded_by_global_tp():
    cluster = recovery_cluster(seed=45, client_hb=0.25, server_hb=0.5)
    handle = cluster.add_client()
    for batch in range(10):
        commit_rows(cluster, handle, [batch * 7, batch * 7 + 1], f"b{batch}")
    cluster.run_until(cluster.kernel.now + 4.0)  # thresholds catch up
    status = cluster.status("tm")
    rm = cluster.rm_status()
    assert rm["global_tp"] > 0
    assert status["log_truncated_below"] == rm["global_tp"]
    # All ten commits persisted; almost everything should be truncated.
    assert status["log_length"] <= 2


def test_truncation_never_drops_records_recovery_needs():
    """Crash a server right after fresh commits: truncation ran throughout,
    yet every lost write-set must still be in the log and be replayed."""
    cluster = recovery_cluster(seed=46, client_hb=0.25, server_hb=0.5)
    handle = cluster.add_client()
    commit_rows(cluster, handle, list(range(0, 60, 7)), "early")
    cluster.run_until(cluster.kernel.now + 3.0)  # persist + truncate
    rows = list(range(0, 2000, 83))
    commit_rows(cluster, handle, rows, "fresh")
    cluster.crash_server(0)  # fresh commits not yet persisted anywhere
    cluster.run_until(cluster.kernel.now + 15.0)
    for i in rows:
        assert read_row(cluster, handle, i) == f"fresh-{i}"


def test_recovery_manager_restart_resumes_from_zk():
    """Section 3.3: the RM's only state is the thresholds, kept in the
    coordination service; a restarted RM catches up and still recovers."""
    cluster = recovery_cluster(seed=47, client_hb=0.5, server_hb=0.5)
    handle = cluster.add_client()
    commit_rows(cluster, handle, [1, 2, 3], "before")
    cluster.run_until(cluster.kernel.now + 2.0)
    before = cluster.rm_status()

    cluster.restart_recovery_manager()
    cluster.run_until(cluster.kernel.now + 2.0)
    after = cluster.rm_status()
    assert after["global_tf"] >= before["global_tf"]
    assert after["global_tp"] >= before["global_tp"]

    # The restarted RM still handles a server failure end-to-end.
    rows = list(range(0, 2000, 101))
    commit_rows(cluster, handle, rows, "postrestart")
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)
    for i in rows:
        assert read_row(cluster, handle, i) == f"postrestart-{i}"


def test_transactions_continue_while_rm_is_down():
    cluster = recovery_cluster(seed=48, client_hb=0.5)
    handle = cluster.add_client()
    cluster.rm.crash()
    ctx = commit_rows(cluster, handle, [11, 22, 33], "rmless")
    assert ctx.state == "flushed"
    for i in (11, 22, 33):
        assert read_row(cluster, handle, i) == f"rmless-{i}"


def test_region_gate_waits_out_rm_downtime():
    """A region opening during RM downtime must stay gated until the RM is
    back and has replayed -- never serve partially recovered state."""
    cluster = recovery_cluster(seed=49, client_hb=0.5, server_hb=0.5)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 89))
    commit_rows(cluster, handle, rows, "gated2")
    cluster.rm.crash()
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 6.0)
    # Regions of the dead server must still be offline: the gate holds.
    status = cluster.cluster_status()
    assert not all(status["online"].values())

    cluster.restart_recovery_manager()
    # The restarted RM has no pending markers for this failure (it was down
    # when the master fired the hook), so the master-notification must be
    # replayed by the opening servers' retries against rpc_recover_region
    # with the failed server identity.
    cluster.run_until(cluster.kernel.now + 20.0)
    status = cluster.cluster_status()
    assert all(status["online"].values())
    for i in rows:
        assert read_row(cluster, handle, i) == f"gated2-{i}"
