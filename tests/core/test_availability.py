"""Availability properties during failures and recovery."""

from repro import TABLE
from repro.kvstore.keys import row_key
from tests.core.conftest import commit_rows, recovery_cluster, rows_on_server


def test_read_only_txns_on_unaffected_regions_continue_through_outage():
    """Section 3.2: during a region outage "the client can at least
    continue to execute read-only transactions on older snapshots" --
    reads against regions on live servers proceed at full speed."""
    cluster = recovery_cluster(seed=57)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 37))
    commit_rows(cluster, handle, rows, "avail")

    survivor_rows = rows_on_server(cluster, 1, rows)
    assert survivor_rows
    cluster.crash_server(0)

    # Immediately, with failover not even detected yet, read-only access
    # to the survivor's regions must work without waiting.
    start = cluster.kernel.now
    read_times = []

    def read_survivors():
        for i in survivor_rows[:10]:
            ctx = yield from handle.txn.begin()
            value = yield from handle.txn.read(ctx, TABLE, row_key(i))
            yield from handle.txn.commit(ctx)  # read-only commit
            assert value == f"avail-{i}"
            read_times.append(cluster.kernel.now)

    cluster.run(read_survivors())
    # All ten served well before failure detection (zk session timeout 1s).
    assert cluster.kernel.now - start < 1.0


def test_transactions_on_live_regions_commit_during_recovery():
    """Recovery never stops the world: update transactions touching only
    live regions commit while the failed server's regions are replaying."""
    cluster = recovery_cluster(seed=58)
    handle = cluster.add_client()
    commit_rows(cluster, handle, list(range(0, 2000, 43)), "base")
    survivor_rows = rows_on_server(cluster, 1, list(range(2000)))
    cluster.crash_server(0)

    committed = []

    def write_live_rows():
        for n, i in enumerate(survivor_rows[:20]):
            ctx = yield from handle.txn.begin()
            handle.txn.write(ctx, TABLE, row_key(i), f"during-outage-{n}")
            yield from handle.txn.commit(ctx)
            committed.append((cluster.kernel.now, ctx.commit_ts))

    start = cluster.kernel.now
    cluster.run(write_live_rows())
    # All 20 committed promptly -- well inside the detection+recovery span.
    assert committed and cluster.kernel.now - start < 2.0
    # And the cluster still recovers fully afterwards.
    cluster.run_until(cluster.kernel.now + 15.0)
    assert all(cluster.cluster_status()["online"].values())
