"""Integration tests: server-failure recovery (Section 3.2, Algorithm 4)."""

from repro import TABLE
from repro.kvstore.keys import row_key
from tests.core.conftest import commit_rows, read_row, recovery_cluster, rows_on_server


def test_unsynced_committed_writes_survive_server_crash():
    """The headline guarantee: with asynchronous persistence, a server
    crash loses memstore + WAL buffer, yet every committed transaction is
    recovered from the TM log."""
    cluster = recovery_cluster(seed=31)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 97))
    ctx = commit_rows(cluster, handle, rows, "precrash")

    # Crash immediately after the flush: nothing WAL-synced on the victim
    # beyond its last heartbeat.
    victim_rows = rows_on_server(cluster, 0, rows)
    assert victim_rows, "expected some rows on the victim server"
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)

    status = cluster.cluster_status()
    assert status["failures_handled"] == 1
    assert all(status["online"].values())

    rm = cluster.rm_status()
    assert rm["replayed_fragments"] > 0
    assert rm["pending_regions"] == {}

    for i in rows:
        assert read_row(cluster, handle, i) == f"precrash-{i}"
    # The commit was never lost from the application's perspective.
    assert ctx.commit_ts is not None


def test_already_persisted_writes_not_replayed():
    """Write-sets below T_P^r(s) are not replayed: the server-side
    checkpointing actually limits recovery work."""
    cluster = recovery_cluster(seed=32, server_hb=0.5, client_hb=0.25)
    handle = cluster.add_client()
    old_rows = list(range(0, 500, 13))
    commit_rows(cluster, handle, old_rows, "old")
    # Let heartbeats persist the WAL and advance all thresholds past it.
    cluster.run_until(cluster.kernel.now + 3.0)
    rm_before = cluster.rm_status()
    assert rm_before["global_tp"] >= 1

    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)
    rm = cluster.rm_status()
    # Everything was persisted before the crash: zero fragments replayed.
    assert rm["replayed_fragments"] == 0
    for i in old_rows:
        assert read_row(cluster, handle, i) == f"old-{i}"


def test_reads_never_observe_partially_recovered_state():
    """Atomicity across recovery: a region gated on transactional recovery
    must not serve the pre-crash (initial) value of a lost update."""
    cluster = recovery_cluster(seed=33)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 53))
    commit_rows(cluster, handle, rows, "gated")
    victim_rows = rows_on_server(cluster, 0, rows)
    assert victim_rows
    cluster.crash_server(0)

    # Read one victim row immediately.  The client retries through the
    # outage; whenever the read completes it must see the committed value,
    # never the stale preload value.
    value = read_row(cluster, handle, victim_rows[0])
    assert value == f"gated-{victim_rows[0]}"


def test_regions_recover_in_parallel_across_survivors():
    cluster = recovery_cluster(seed=34, n_servers=3, n_regions=6)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 41))
    commit_rows(cluster, handle, rows, "spread")
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)
    status = cluster.cluster_status()
    survivors = set(status["assignments"].values())
    assert survivors <= {"rs1", "rs2"}
    assert len(survivors) == 2  # reassignment spread over both survivors
    for i in rows:
        assert read_row(cluster, handle, i) == f"spread-{i}"


def test_responsibility_inheritance_survives_cascading_failure():
    """Crash rs0; its regions recover onto survivors; crash the inheritor
    shortly after.  The piggybacked T_P / floors must keep the replayed
    write-sets recoverable a second time."""
    cluster = recovery_cluster(seed=35, n_servers=3, n_regions=6)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 29))
    commit_rows(cluster, handle, rows, "cascade")
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 8.0)
    status = cluster.cluster_status()
    assert all(status["online"].values())
    # Crash a survivor quickly -- before its regular heartbeat cadence has
    # fully re-persisted everything it just inherited.
    cluster.crash_server(1)
    cluster.run_until(cluster.kernel.now + 20.0)
    status = cluster.cluster_status()
    assert all(status["online"].values())
    assert set(status["assignments"].values()) == {"rs2"}
    for i in rows:
        assert read_row(cluster, handle, i) == f"cascade-{i}"


def test_flush_interrupted_by_failure_eventually_completes():
    """A client mid-flush when the server dies keeps retrying (unbounded,
    per Section 3.2) and completes once the region is back online, letting
    T_F advance again."""
    cluster = recovery_cluster(seed=36)
    handle = cluster.add_client()
    rows = list(range(0, 2000, 67))

    ctx_holder = {}

    def committing():
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"during-{i}")
        yield from handle.txn.commit(ctx)  # flush continues in background
        ctx_holder["ctx"] = ctx
        return ctx


    proc = cluster.kernel.process(committing())
    proc.defuse()
    # Crash while the commit/flush is in flight.
    cluster.after(0.004, lambda: cluster.crash_server(0))
    cluster.run_until(cluster.kernel.now + 25.0)

    ctx = ctx_holder["ctx"]
    assert ctx.state == "flushed"  # retries outlasted the outage
    cluster.run_until(cluster.kernel.now + 3.0)
    assert handle.agent.tf >= ctx.commit_ts  # T_F unblocked
    for i in rows:
        assert read_row(cluster, handle, i) == f"during-{i}"
