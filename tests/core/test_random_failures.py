"""Randomised failure schedules (DESIGN.md invariant 3).

For several seeds: run a live workload, crash a random subset of machines
and clients at random times, let recovery settle, and verify that **every
transaction whose commit was acknowledged is durable** -- readable at its
commit timestamp -- afterwards.  This is the paper's end-to-end guarantee
under arbitrary (covered) failures.
"""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key
from repro.sim.events import Interrupt


def build(seed):
    config = ClusterConfig(seed=seed)
    config.kv.n_region_servers = 3
    config.kv.n_regions = 6
    config.kv.wal_sync_interval = 300.0  # the store alone would lose data
    config.workload.n_rows = 3000
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.server_heartbeat_interval = 0.5
    config.zk.session_timeout = 1.0
    config.zk.tick_interval = 0.2
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_every_acknowledged_commit_survives_random_failures(seed):
    cluster = build(seed)
    rng = cluster.kernel.rng.substream("chaos")
    writers = [cluster.add_client(f"w{i}") for i in range(3)]
    acknowledged = []  # (commit_ts, rows, tag)

    def writer_loop(handle, wid):
        counter = 0
        try:
            while True:
                counter += 1
                tag = f"{wid}.{counter}"
                rows = sorted(rng.sample(range(3000), 5))
                ctx = yield from handle.txn.begin()
                for i in rows:
                    handle.txn.write(ctx, TABLE, row_key(i), f"{tag}")
                try:
                    yield from handle.txn.commit(ctx)
                except Exception:
                    continue  # conflict: not acknowledged, no guarantee
                acknowledged.append((ctx.commit_ts, rows, tag))
                yield handle.node.sleep(0.05)
        except Interrupt:
            return

    for i, handle in enumerate(writers):
        p = handle.node.spawn(writer_loop(handle, f"w{i}"), name=f"writer{i}")
        p.defuse()

    # Random failure schedule: one server machine and one writer client.
    server_victim = rng.randrange(3)
    client_victim = rng.randrange(3)
    cluster.after(rng.uniform(1.0, 3.0), lambda: cluster.crash_server(server_victim))
    cluster.after(
        rng.uniform(3.5, 5.0), lambda: writers[client_victim].node.crash()
    )

    cluster.run_until(cluster.kernel.now + 10.0)
    # Stop surviving writers, then let recovery and flushes settle fully.
    for handle in writers:
        if handle.node.alive:
            for proc in list(handle.node._procs):
                if "writer" in proc.name:
                    proc.interrupt("test stop")
    cluster.run_until(cluster.kernel.now + 20.0)

    status = cluster.cluster_status()
    assert all(status["online"].values()), "some region never came back"

    reader = cluster.add_client("reader")

    def read_at(i, ts):
        result = yield from reader.kv.get(TABLE, row_key(i), "f", max_version=ts)
        return result

    assert acknowledged, "the workload committed nothing"
    # Every acknowledged commit must be durable: reading the row at the
    # commit timestamp returns a version stamped at or after... exactly at
    # commit_ts for the rows this txn wrote (later writes have higher ts).
    lost = []
    for commit_ts, rows, tag in acknowledged:
        for i in rows:
            got = cluster.run(read_at(i, commit_ts))
            if got is None or got[0] != commit_ts or got[1] != tag:
                # A same-row write by a later txn cannot shadow version
                # commit_ts at snapshot commit_ts; absence means data loss.
                lost.append((commit_ts, i, tag, got))
    assert not lost, f"{len(lost)} acknowledged writes lost, e.g. {lost[:3]}"
