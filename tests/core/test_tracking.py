"""Unit tests for the threshold trackers (Algorithms 1 and 3)."""

from repro.core.tracking import FlushTracker, PersistTracker
from repro.sim import Kernel


def drive(kernel, gen):
    return kernel.run_until_complete(kernel.process(gen))


def note_commit(kernel, tracker, ts):
    drive(kernel, tracker.note_commit(ts))


def note_flushed(kernel, tracker, ts):
    drive(kernel, tracker.note_flushed(ts))


class TestFlushTracker:
    def test_advances_in_commit_order(self):
        k = Kernel()
        t = FlushTracker(k)
        for ts in (1, 2, 3):
            note_commit(k, t, ts)
        note_flushed(k, t, 1)
        t.advance()
        assert t.tf == 1
        note_flushed(k, t, 2)
        note_flushed(k, t, 3)
        t.advance()
        assert t.tf == 3

    def test_out_of_order_flush_held_back(self):
        """The paper's T_i < T_j case: flush of T_j completes first, but
        T_F must wait for T_i."""
        k = Kernel()
        t = FlushTracker(k)
        note_commit(k, t, 10)
        note_commit(k, t, 11)
        note_flushed(k, t, 11)  # later txn flushed first
        t.advance()
        assert t.tf == 0  # held back by txn 10
        note_flushed(k, t, 10)
        t.advance()
        assert t.tf == 11  # both retire at once, in order

    def test_initial_tf_from_global(self):
        k = Kernel()
        t = FlushTracker(k, initial_tf=55)
        assert t.tf == 55
        note_commit(k, t, 60)
        note_flushed(k, t, 60)
        t.advance()
        assert t.tf == 60

    def test_in_flight_counts_unflushed_commits(self):
        k = Kernel()
        t = FlushTracker(k)
        for ts in (1, 2, 3):
            note_commit(k, t, ts)
        assert t.in_flight == 3
        note_flushed(k, t, 1)
        t.advance()
        assert t.in_flight == 2

    def test_tf_monotonic_under_interleaving(self):
        k = Kernel()
        t = FlushTracker(k)
        observed = []
        flush_order = [3, 1, 5, 2, 4]
        for ts in (1, 2, 3, 4, 5):
            note_commit(k, t, ts)
        for ts in flush_order:
            note_flushed(k, t, ts)
            t.advance()
            observed.append(t.tf)
        assert observed == sorted(observed)
        assert observed[-1] == 5


class TestPersistTracker:
    def test_advance_to_global_tf_on_sync(self):
        k = Kernel()
        t = PersistTracker(k)
        t.note_fragment()
        t.note_fragment()
        assert t.pending == 2
        t.begin_sync()
        t.complete_sync(tf_global=40)
        assert t.tp == 40
        assert t.pending == 0

    def test_tp_never_regresses_from_stale_tf(self):
        k = Kernel()
        t = PersistTracker(k)
        t.complete_sync(50)
        t.complete_sync(30)  # stale global read
        assert t.tp == 50

    def test_piggyback_caps_report_until_synced(self):
        k = Kernel()
        t = PersistTracker(k)
        t.complete_sync(100)
        assert t.report_value() == 100
        t.note_piggyback(40)  # inherited responsibility
        assert t.report_value() == 40
        t.begin_sync()
        t.complete_sync(110)  # the inherited updates are now durable
        assert t.report_value() == 110

    def test_piggyback_during_sync_survives_to_next_round(self):
        k = Kernel()
        t = PersistTracker(k)
        t.complete_sync(100)
        t.begin_sync()
        t.note_piggyback(40)  # arrives mid-sync: not covered by it
        t.complete_sync(110)
        assert t.report_value() == 40  # still capped
        t.begin_sync()
        t.complete_sync(120)
        assert t.report_value() == 120

    def test_lowest_piggyback_wins(self):
        k = Kernel()
        t = PersistTracker(k)
        t.complete_sync(100)
        t.note_piggyback(60)
        t.note_piggyback(30)
        t.note_piggyback(80)
        assert t.report_value() == 30
