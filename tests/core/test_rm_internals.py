"""Unit-level tests of recovery-manager internals: threshold ingestion,
floors, and global-minimum computation."""

from repro.core.recovery_manager import FAILED, LIVE, RecoveryManager, _Tracked
from repro.sim import Kernel, Network


def make_rm():
    k = Kernel(seed=151)
    net = Network(k)
    return RecoveryManager(k, net)


class TestTracked:
    def test_effective_without_floors(self):
        entry = _Tracked(50, 0.0)
        assert entry.effective() == 50

    def test_floor_caps_effective(self):
        entry = _Tracked(50, 0.0)
        entry.floors["r1"] = 30
        entry.floors["r2"] = 40
        assert entry.effective() == 30
        del entry.floors["r1"]
        assert entry.effective() == 40
        del entry.floors["r2"]
        assert entry.effective() == 50

    def test_floor_above_threshold_is_harmless(self):
        entry = _Tracked(20, 0.0)
        entry.floors["r"] = 90
        assert entry.effective() == 20


class TestGlobals:
    def test_global_tf_is_min_over_clients(self):
        rm = make_rm()
        rm.clients["a"] = _Tracked(10, 0.0)
        rm.clients["b"] = _Tracked(7, 0.0)
        rm._recompute_globals()
        assert rm.global_tf == 7

    def test_global_tf_monotonic(self):
        rm = make_rm()
        rm.clients["a"] = _Tracked(10, 0.0)
        rm._recompute_globals()
        assert rm.global_tf == 10
        # A later, lower min (e.g. a fresh client that registered with the
        # published global) must not drag the global backwards.
        rm.clients["b"] = _Tracked(3, 0.0)
        rm._recompute_globals()
        assert rm.global_tf == 10

    def test_global_tp_respects_failed_server_pin(self):
        rm = make_rm()
        rm.servers["s1"] = _Tracked(100, 0.0)
        dead = _Tracked(40, 0.0)
        dead.status = FAILED
        rm.servers["s2"] = dead
        rm._recompute_globals()
        assert rm.global_tp == 40  # pinned until its regions recover

    def test_global_tp_respects_replay_floor(self):
        rm = make_rm()
        host = _Tracked(100, 0.0)
        host.floors["region-x"] = 25  # replay in flight onto this server
        rm.servers["s1"] = host
        rm._recompute_globals()
        assert rm.global_tp == 25

    def test_no_components_leave_globals_unchanged(self):
        rm = make_rm()
        rm.global_tf = 5
        rm.global_tp = 4
        rm._recompute_globals()
        assert (rm.global_tf, rm.global_tp) == (5, 4)


class TestIngestion:
    def test_client_heartbeat_updates_live_entry(self):
        rm = make_rm()
        rm._ingest_clients(
            ["/recovery/clients/c1"], [{"data": {"tf": 12, "t": 1.0}}]
        )
        assert rm.clients["c1"].threshold == 12
        rm._ingest_clients(
            ["/recovery/clients/c1"], [{"data": {"tf": 20, "t": 2.0}}]
        )
        assert rm.clients["c1"].threshold == 20

    def test_deleted_znode_unregisters_live_client(self):
        rm = make_rm()
        rm.clients["c1"] = _Tracked(5, 0.0)
        rm._ingest_clients([], [])
        assert "c1" not in rm.clients

    def test_recovering_client_is_not_unregistered_by_absence(self):
        rm = make_rm()
        entry = _Tracked(5, 0.0)
        entry.status = "recovering"
        rm.clients["c1"] = entry
        rm._ingest_clients([], [])
        assert "c1" in rm.clients  # frozen until its replay completes

    def test_server_alert_recorded(self):
        rm = make_rm()
        rm._ingest_servers(
            ["/recovery/servers/rs0"],
            [{"data": {"tp": 3, "t": 1.0, "alert": 999}}],
        )
        assert rm.alerts and rm.alerts[0]["component"] == "rs0"

    def test_failed_server_ignores_late_heartbeats(self):
        rm = make_rm()
        dead = _Tracked(40, 0.0)
        dead.status = FAILED
        rm.servers["rs0"] = dead
        rm._ingest_servers(
            ["/recovery/servers/rs0"], [{"data": {"tp": 99, "t": 5.0}}]
        )
        assert rm.servers["rs0"].threshold == 40  # stays pinned
