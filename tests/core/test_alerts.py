"""Stuck-region alerting (Section 3.2's administrator escape hatch).

Each client monitors the size of its flush queue; when it exceeds the
configured threshold -- e.g. a region that stays unavailable so flushes
pile up -- an alert rides the next heartbeat and the recovery manager
records it for operator attention.
"""

from repro import TABLE
from repro.kvstore.keys import row_key
from tests.core.conftest import recovery_cluster


def test_stuck_flushes_raise_alerts():
    cluster = recovery_cluster(seed=55, client_hb=0.5)
    cluster.config.recovery.queue_alert_threshold = 2  # tiny, for the test
    handle = cluster.add_client("alerter")

    # Make every region permanently unavailable to flushes by crashing both
    # machines' region servers (keeping zk/tm alive).
    cluster.servers[0].crash()
    cluster.servers[1].crash()

    def commit_without_flush_progress():
        for n in range(6):
            ctx = yield from handle.txn.begin()
            handle.txn.write(ctx, TABLE, row_key(n), f"stuck-{n}")
            yield from handle.txn.commit(ctx)  # commits fine (TM log is up)
            yield handle.node.sleep(0.05)

    proc = cluster.kernel.process(commit_without_flush_progress())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 4.0)

    assert handle.agent.tracker.in_flight >= 6  # nothing could flush
    assert handle.agent.alerts_raised > 0
    assert len(cluster.rm.alerts) > 0
    assert cluster.rm.alerts[0]["component"] == "alerter"


def test_no_alerts_in_healthy_operation():
    cluster = recovery_cluster(seed=56, client_hb=0.5)
    cluster.config.recovery.queue_alert_threshold = 5
    handle = cluster.add_client("quiet")

    def commits():
        for n in range(10):
            ctx = yield from handle.txn.begin()
            handle.txn.write(ctx, TABLE, row_key(n), f"ok-{n}")
            yield from handle.txn.commit(ctx, wait_flush=True)

    cluster.run(commits())
    cluster.run_until(cluster.kernel.now + 2.0)
    assert handle.agent.alerts_raised == 0
    assert cluster.rm.alerts == []
