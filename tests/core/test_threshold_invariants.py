"""Threshold invariants on live clusters across restarts and failures.

The paper's correctness argument rests on a handful of ordering
invariants between the flush threshold T_F and the persistence
thresholds T_P(s) (Section 3).  These tests keep an
:class:`~repro.check.monitor.InvariantMonitor` sampling while the
cluster goes through the transitions most likely to break them: server
incarnation changes, recovery-manager restarts, and a client and server
failing at the same instant.
"""

from repro.check import InvariantMonitor, evaluate_invariants

from tests.core.conftest import commit_rows, read_row, recovery_cluster


def settle(cluster, seconds):
    cluster.run_until(cluster.kernel.now + seconds)


def test_invariants_hold_across_server_incarnation_change():
    cluster = recovery_cluster(seed=61)
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    handle = cluster.add_client("c0")

    commit_rows(cluster, handle, range(0, 20), "pre")
    settle(cluster, 1.0)

    old_incarnation = cluster.servers[0].incarnation
    cluster.crash_server(0)
    settle(cluster, 6.0)  # session expiry, failover, replay
    cluster.restart_server(0)
    settle(cluster, 3.0)

    commit_rows(cluster, handle, range(20, 40), "post")
    settle(cluster, 2.0)

    assert cluster.servers[0].incarnation > old_incarnation
    assert monitor.samples > 0
    assert monitor.ok, monitor.violations
    # The monitor really observed both lives of the restarted server --
    # T_P monotonicity is tracked per (server, incarnation).
    addr = cluster.servers[0].addr
    incs = {k[2] for k in monitor.memory if k[:2] == ("server", addr)}
    assert len(incs) >= 2, incs

    # The data survived the incarnation change, too.
    assert read_row(cluster, handle, 0) == "pre-0"
    assert read_row(cluster, handle, 20) == "post-20"


def test_restarted_server_tp_bounded_by_last_read_tf():
    cluster = recovery_cluster(seed=62)
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    handle = cluster.add_client("c0")

    commit_rows(cluster, handle, range(0, 30), "a")
    cluster.crash_server(1)
    settle(cluster, 6.0)
    cluster.restart_server(1)
    commit_rows(cluster, handle, range(30, 60), "b")
    settle(cluster, 3.0)

    # Direct, single-sample statement of the paper's bound: every live
    # server's persistence threshold stays at or below the global flush
    # threshold it last read from the recovery manager.
    state = monitor.sample()
    assert state["servers"], "no live server state sampled"
    for addr, entry in state["servers"].items():
        assert entry["tp"] <= entry["last_tf_seen"], (addr, entry)
    assert evaluate_invariants(state) == []
    assert monitor.ok, monitor.violations


def test_invariants_hold_under_simultaneous_client_and_server_failure():
    cluster = recovery_cluster(seed=63)
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    doomed = cluster.add_client("doomed")
    survivor = cluster.add_client("survivor")

    commit_rows(cluster, doomed, range(0, 10), "d")
    commit_rows(cluster, survivor, range(10, 20), "s")
    # Leave un-flushed work in flight from the doomed client, then take
    # out its machine and a region server in the same instant.
    commit_rows(cluster, doomed, range(0, 10), "d2", wait_flush=False)
    cluster.crash_client(0)
    cluster.crash_server(0)
    settle(cluster, 10.0)  # client recovery + server failover overlap

    commit_rows(cluster, survivor, range(10, 20), "s2")
    settle(cluster, 3.0)

    assert monitor.samples > 0
    assert monitor.ok, monitor.violations
    # The recovery manager declared the client dead and moved on: the
    # survivor's commits kept the global thresholds advancing.
    state = monitor.sample()
    assert state["rm"] is not None
    assert "doomed" not in state["rm"]["live_clients"]
    assert state["rm"]["global_tp"] <= state["rm"]["global_tf"]
    assert read_row(cluster, survivor, 10) == "s2-10"


def test_invariants_hold_across_recovery_manager_restart():
    cluster = recovery_cluster(seed=64)
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    handle = cluster.add_client("c0")

    commit_rows(cluster, handle, range(0, 15), "x")
    settle(cluster, 1.0)
    cluster.restart_recovery_manager()
    settle(cluster, 3.0)
    commit_rows(cluster, handle, range(15, 30), "y")
    settle(cluster, 2.0)

    # The new manager recovered its published state: the global flush
    # threshold is judged per-epoch, so a correct restart produces no
    # global_monotone noise -- and no other violation either.
    assert monitor.ok, monitor.violations
    assert read_row(cluster, handle, 15) == "y-15"
