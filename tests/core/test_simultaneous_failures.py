"""Simultaneous client + server failure: the hardest covered scenario.

A client dies with commits unflushed at the same instant a server dies
with flushed-but-unpersisted data.  The two recoveries overlap: the region
replay (after T_P^r) and the client replay (after T_F^r) both run, both
idempotent, and between them every acknowledged commit survives.
"""

from repro import TABLE
from repro.kvstore.keys import row_key
from repro.workload.verify import CommitLedger
from tests.core.conftest import recovery_cluster


def test_client_and_server_die_together():
    cluster = recovery_cluster(seed=201, n_servers=3, n_regions=6)
    doomed = cluster.add_client("doomed")
    steady = cluster.add_client("steady")
    ledger = CommitLedger()

    def committed(handle, rows, tag, wait_flush):
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx, wait_flush=wait_flush)
        return ctx

    # Steady traffic that is fully flushed (but not persisted: huge WAL
    # sync interval) -- the server crash's exposure.
    for n in range(5):
        cluster.run(
            ledger.executed(
                cluster,
                committed(steady, range(n * 120, n * 120 + 30), f"s{n}", True),
                TABLE,
            )
        )

    # The doomed client commits and immediately dies mid-flush -- the
    # client crash's exposure -- while a server dies at the same moment.
    def doom():
        ctx = yield from committed(
            doomed, range(1000, 2000, 47), "doomed", False
        )
        ledger.record(ctx, TABLE)
        doomed.node.crash()
        cluster.crash_server(0)

    proc = cluster.kernel.process(doom())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 25.0)

    status = cluster.cluster_status()
    assert status["failures_handled"] == 1
    assert all(status["online"].values())
    rm = cluster.rm_status()
    assert rm["client_recoveries"] == 1
    assert rm["pending_regions"] == {}

    violations = ledger.verify(cluster)
    assert violations == [], f"lost {len(violations)}: {violations[:3]}"


def test_two_servers_die_together():
    """Two machines die at the same instant (a rack failure).  With
    replication factor 3 the filesystem keeps every durable file readable,
    and the TM log replays everything volatile -- nothing acknowledged is
    lost even though two thirds of the store vanished at once."""
    cluster = recovery_cluster(seed=202, n_servers=3, n_regions=6, replication=3)
    handle = cluster.add_client()
    ledger = CommitLedger()

    def committed(rows, tag):
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx, wait_flush=True)
        return ctx

    for n in range(4):
        cluster.run(
            ledger.executed(
                cluster, committed(range(n * 150, n * 150 + 40), f"b{n}"), TABLE
            )
        )

    cluster.crash_server(0)
    cluster.crash_server(1)  # same instant: a rack failure
    cluster.run_until(cluster.kernel.now + 40.0)
    status = cluster.cluster_status()
    assert status["failures_handled"] == 2
    assert all(status["online"].values())
    assert set(status["assignments"].values()) == {"rs2"}

    violations = ledger.verify(cluster)
    assert violations == [], f"lost {len(violations)}: {violations[:3]}"
