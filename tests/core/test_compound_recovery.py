"""Compound-failure tests: the recovery pipeline failing mid-recovery.

Fan-out recovery distributes a dead server's regions across every live
server, each fetching scattered WAL fragments from backup datanodes.
These tests point the oracle at the pipeline's own failure modes: a
recipient dying while it hosts recovery partitions, the sole backup copy
of a fragment vanishing mid-fetch, and a second failover racing the
in-flight recovery plan.
"""

from repro.check import SIChecker
from repro.kvstore.wal import wal_dir
from tests.core.conftest import commit_rows, read_row, recovery_cluster


def _step_until(cluster, predicate, deadline, step=0.1):
    """Advance the simulation until ``predicate()`` or ``deadline``."""
    while cluster.kernel.now < deadline:
        if predicate():
            return True
        cluster.run_until(cluster.kernel.now + step)
    return predicate()


def _crash_when(cluster, predicate, action, fired):
    """In-sim watcher: run ``action`` at the first tick ``predicate`` holds.

    On a clean fabric the hook->replay window is milliseconds of sim
    time; sampling from outside the simulation would step right over it.
    """

    def watcher():
        while not predicate():
            yield cluster.kernel.timeout(0.005)
        action()
        fired.append(cluster.kernel.now)

    cluster.kernel.process(watcher()).defuse()


def _settled(cluster, min_failures=1):
    status = cluster.cluster_status()
    return (
        status["failures_handled"] >= min_failures
        and all(status["online"].values())
        and not cluster.rm.pending_regions
    )


def test_recipient_crash_while_hosting_recovery_partitions():
    """Crash rs0; once rs1 is designated a recovery recipient (it holds a
    pinned region of the in-flight plan), crash rs1 too.  The orphaned
    partitions must be re-covered by the second failover, and every
    committed write must still be readable."""
    cluster = recovery_cluster(seed=41, n_servers=3, n_regions=6)
    handle = cluster.add_client()
    recorder = cluster.attach_history_recorder()
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    rows = list(range(0, 2000, 37))
    commit_rows(cluster, handle, rows, "compound")

    def rs1_hosts_recovery_partition():
        return any(
            cluster.master.assignments.get(region) == "rs1"
            for region in cluster.rm.pending_regions
        )

    fired = []
    _crash_when(
        cluster,
        rs1_hosts_recovery_partition,
        lambda: cluster.crash_server(1),
        fired,
    )
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 20.0)
    assert fired, "rs1 never received a recovery partition"

    assert _step_until(
        cluster, lambda: _settled(cluster, min_failures=2), cluster.kernel.now + 60.0
    ), f"recovery never settled: pending={dict(cluster.rm.pending_regions)}"
    status = cluster.cluster_status()
    assert set(status["assignments"].values()) == {"rs2"}
    for i in rows:
        assert read_row(cluster, handle, i) == f"compound-{i}"

    report = SIChecker(recorder.events).check()
    assert report.ok, "\n".join(str(a) for a in report.anomalies)
    assert monitor.ok, monitor.violations


def test_sole_copy_backup_dies_mid_fetch_then_revives():
    """With replication=1 each scattered WAL segment has exactly one
    backup copy.  Kill the holder of the victim's freshest segment right
    after the crash -- the fragment fetch stalls on retries -- then revive
    it inside the retry window.  Recovery must complete, not abort."""
    cluster = recovery_cluster(seed=42, n_servers=3, n_regions=6, replication=1)
    handle = cluster.add_client()
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    rows = list(range(0, 2000, 43))
    commit_rows(cluster, handle, rows, "solecopy")

    # Crash only the region-server process; its local datanode survives,
    # so the fragments we block are blocked purely by the backup's death.
    cluster.servers[0].crash()

    prefix = wal_dir("rs0")
    segments = sorted(
        path for path in cluster.namenode._files if path.startswith(prefix)
    )
    assert segments, "victim left no scattered WAL segments"
    meta = cluster.namenode._files[segments[-1]]
    assert len(meta.replicas) == 1, "replication=1 should leave a sole copy"
    backup = meta.replicas[0]
    victim_dn = next(dn for dn in cluster.datanodes if dn.addr == backup)
    victim_dn.crash()
    revive_at = cluster.kernel.now + 8.0
    cluster.after(8.0, victim_dn.revive)

    assert _step_until(
        cluster, lambda: _settled(cluster), cluster.kernel.now + 45.0
    ), f"recovery never settled: pending={dict(cluster.rm.pending_regions)}"
    # The fragment fetch genuinely stalled: with the sole copy offline,
    # recovery cannot have completed before the backup revived.
    assert cluster.kernel.now >= revive_at
    for i in rows:
        assert read_row(cluster, handle, i) == f"solecopy-{i}"
    assert monitor.ok, monitor.violations


def test_second_failover_races_in_flight_recovery_plan():
    """Crash rs1 the moment rs0's recovery plan is in flight (regions
    pinned, opens dispatched).  The plan's opens against rs1 time out and
    leave their regions on the corpse; the second failover must pick them
    up, and the pins must transfer without double-counting."""
    cluster = recovery_cluster(seed=43, n_servers=3, n_regions=6)
    handle = cluster.add_client()
    recorder = cluster.attach_history_recorder()
    monitor = cluster.attach_invariant_monitor(interval=0.25)
    rows = list(range(0, 2000, 31))
    commit_rows(cluster, handle, rows, "race")

    # Kill a designated recipient the instant the plan pins a region,
    # then bring its machine back after a dwell (chaos-janitor style):
    # with replication=2 and two of three machines down, fragments whose
    # replicas both died are unavailable until one holder returns.
    def revive_rs1():
        rs = cluster.servers[1]
        cluster.datanodes[1].revive()

        def bring_up():
            # Wait until the master observed the death, or the
            # re-registration masks it and failover never runs.
            while rs.addr in cluster.master._live_servers:
                yield cluster.kernel.timeout(0.25)
            yield from rs.restart()

        cluster.kernel.process(bring_up()).defuse()

    fired = []
    _crash_when(
        cluster,
        lambda: bool(cluster.rm.pending_regions),
        lambda: (cluster.crash_server(1), cluster.after(6.0, revive_rs1))[0],
        fired,
    )
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 20.0)
    assert fired, "rs0's failover never pinned a region"

    assert _step_until(
        cluster, lambda: _settled(cluster, min_failures=2), cluster.kernel.now + 60.0
    ), f"recovery never settled: pending={dict(cluster.rm.pending_regions)}"
    status = cluster.cluster_status()
    assert set(status["assignments"].values()) <= {"rs1", "rs2"}
    for i in rows:
        assert read_row(cluster, handle, i) == f"race-{i}"

    report = SIChecker(recorder.events).check()
    assert report.ok, "\n".join(str(a) for a in report.anomalies)
    assert monitor.ok, monitor.violations
