"""Tests for the message tracer."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key
from repro.metrics.tracing import Tracer


class TestTracerUnit:
    def test_record_and_filter(self):
        t = Tracer()
        t.record(1.0, "send", "a", "b", "get")
        t.record(2.0, "deliver", "a", "b", "get")
        t.record(3.0, "send", "c", "d", "put")
        assert len(t) == 3
        assert len(t.events(kind="send")) == 2
        assert len(t.events(component="c")) == 1
        assert len(t.events(method="get")) == 2
        assert len(t.events(t_from=1.5, t_to=2.5)) == 1

    def test_ring_buffer_bounds(self):
        t = Tracer(capacity=5)
        for i in range(8):
            t.record(float(i), "send", "a", "b", "m")
        assert len(t) == 5
        assert t.dropped_events == 3
        assert t.events()[0].t == 3.0

    def test_disable(self):
        t = Tracer()
        t.enabled = False
        t.record(1.0, "send", "a", "b", "m")
        assert len(t) == 0

    def test_summary_counts(self):
        t = Tracer()
        t.record(1.0, "send", "a", "b", "get")
        t.record(1.1, "deliver", "a", "b", "get")
        t.record(2.0, "crash", "x", "x", "-")
        summary = t.summary()
        assert summary["by_kind"] == {"send": 1, "deliver": 1, "crash": 1}
        assert summary["by_method"] == {"get": 2}

    def test_format(self):
        t = Tracer()
        assert "no matching" in t.format()
        t.record(1.0, "drop", "a", "b", "flush")
        assert "drop" in t.format(kind="drop")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestClusterIntegration:
    def test_trace_captures_rpcs_and_crash(self):
        config = ClusterConfig(seed=131)
        config.workload.n_rows = 1000
        config.kv.n_regions = 2
        cluster = SimCluster(config)
        tracer = cluster.enable_tracing()
        cluster.start()
        cluster.preload()
        handle = cluster.add_client()

        def txn():
            ctx = yield from handle.txn.begin()
            handle.txn.write(ctx, TABLE, row_key(1), "traced")
            yield from handle.txn.commit(ctx, wait_flush=True)

        cluster.run(txn())
        assert tracer.events(method="commit")
        assert tracer.events(method="txn_flush")

        cluster.crash_server(0)
        # A message sent at the dead machine is recorded as a drop.
        cluster.observer.cast("rs0", "status")
        cluster.run_until(cluster.kernel.now + 8.0)
        crashes = tracer.events(kind="crash")
        assert {e.src for e in crashes} >= {"rs0", "dn0"}
        assert tracer.events(kind="drop", method="status")
        # And the recovery conversation is visible.
        assert tracer.events(method="recover_region")
