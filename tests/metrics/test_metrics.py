"""Unit tests for histograms, time series, and table rendering."""

import pytest

from repro.metrics import LatencyHistogram, TimeSeries, format_table, ms


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_mean_and_extremes(self):
        h = LatencyHistogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.mean == 2.5
        assert h.minimum == 1.0
        assert h.maximum == 4.0

    def test_percentiles_interpolate(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert abs(h.percentile(50) - 50.5) < 1e-9
        assert abs(h.percentile(95) - 95.05) < 1e-9

    def test_unsorted_input_handled(self):
        h = LatencyHistogram()
        for v in (5.0, 1.0, 3.0):
            h.record(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 5.0

    def test_invalid_percentile(self):
        h = LatencyHistogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.record(0.01)
        summary = h.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_stddev(self):
        h = LatencyHistogram()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.record(v)
        assert abs(h.stddev - 2.0) < 1e-9


class TestTimeSeries:
    def test_rate_series_fills_gaps(self):
        ts = TimeSeries(1.0)
        ts.record(0.5)
        ts.record(0.7)
        ts.record(2.1)
        assert ts.rate_series() == [(0.0, 2.0), (1.0, 0.0), (2.0, 1.0)]

    def test_mean_series(self):
        ts = TimeSeries(1.0)
        ts.record(0.5, 10.0)
        ts.record(0.7, 20.0)
        ts.record(2.0, 5.0)
        means = ts.mean_series()
        assert means[0] == (0.0, 15.0)
        assert means[1] == (1.0, None)
        assert means[2] == (2.0, 5.0)

    def test_bucket_width_scaling(self):
        ts = TimeSeries(0.5)
        ts.record(0.2)
        ts.record(0.3)
        assert ts.rate_series() == [(0.0, 4.0)]  # 2 events / 0.5 s

    def test_windows(self):
        ts = TimeSeries(1.0)
        for t, v in ((0.5, 1.0), (1.5, 2.0), (2.5, 3.0), (3.5, 4.0)):
            ts.record(t, v)
        assert ts.count_in(1.0, 3.0) == 2
        assert ts.mean_in(1.0, 3.0) == 2.5
        assert ts.mean_in(10.0, 20.0) is None

    def test_total_count_and_empty(self):
        ts = TimeSeries(1.0)
        assert ts.empty
        ts.record(1.0)
        assert ts.total_count() == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TimeSeries(0)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bbb"], [(1, 2.5), ("xx", 0.001)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_float_formatting(self):
        out = format_table(["v"], [(123.456,), (1.234,), (0.01234,), (0.0,)])
        assert "123.5" in out
        assert "1.23" in out
        assert "0.0123" in out

    def test_ms_helper(self):
        assert ms(0.25) == 250.0
        assert ms(None) is None
