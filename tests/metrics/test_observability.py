"""Tests for the metrics registry and the commit-path span tracer."""

import json

import pytest

from repro.metrics import (
    MetricsRegistry,
    SpanTracer,
    merge_counters,
    spans_table,
    status_envelope,
    status_table,
    tracer_for,
)
from repro.sim import Kernel


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_counter_inc_and_set():
    reg = MetricsRegistry("tm", "tm0")
    c = reg.counter("commits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.set(2)
    assert reg.counter("commits").value == 2  # same instance


def test_labeled_series_are_distinct_and_flattened():
    reg = MetricsRegistry("rs", "rs0")
    reg.counter("fragments", region="r1").inc()
    reg.counter("fragments", region="r2").inc(2)
    snap = reg.snapshot()
    assert snap["counters"] == {
        "fragments{region=r1}": 1,
        "fragments{region=r2}": 2,
    }


def test_gauge_moves_both_ways():
    reg = MetricsRegistry("x")
    g = reg.gauge("depth")
    g.inc(3)
    g.dec()
    assert g.value == 2
    g.set(10.5)
    assert reg.snapshot()["gauges"]["depth"] == 10.5


def test_histogram_percentiles_land_in_snapshot():
    reg = MetricsRegistry("tm", "tm0")
    h = reg.histogram("commit_latency")
    for v in range(1, 101):
        h.record(v / 1000.0)
    summary = reg.snapshot()["histograms"]["commit_latency"]
    assert summary["count"] == 100
    assert summary["p50"] == pytest.approx(0.050, abs=0.002)
    assert summary["p95"] == pytest.approx(0.095, abs=0.002)
    assert summary["p99"] == pytest.approx(0.099, abs=0.002)
    assert summary["max"] == pytest.approx(0.100)


def test_snapshot_keys_are_sorted_and_json_stable():
    reg = MetricsRegistry("tm", "tm0")
    reg.counter("zeta").inc()
    reg.counter("alpha").inc()
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["alpha", "zeta"]
    # byte-identical dumps regardless of creation order
    reg2 = MetricsRegistry("tm", "tm0")
    reg2.counter("alpha").inc()
    reg2.counter("zeta").inc()
    assert json.dumps(snap, sort_keys=True) == json.dumps(
        reg2.snapshot(), sort_keys=True
    )


def test_counters_returns_hot_path_handles():
    reg = MetricsRegistry("txn_client", "c0")
    begun, committed = reg.counters("begun", "committed")
    assert reg.snapshot()["counters"] == {"begun": 0, "committed": 0}
    begun.inc()
    committed.inc(7)
    assert reg.counter("begun").value == 1
    assert reg.counter("committed").value == 7


def test_legacy_counter_view_is_gone():
    reg = MetricsRegistry("txn_client", "c0")
    assert not hasattr(reg, "counter" + "_view")
    import repro.metrics as metrics
    assert not hasattr(metrics, "Counter" + "View")


def test_merge_counters_sums_across_snapshots():
    a = MetricsRegistry("rs", "rs0")
    b = MetricsRegistry("rs", "rs1")
    a.counter("gets").inc(2)
    b.counter("gets").inc(3)
    b.counter("flushes").inc()
    totals = merge_counters(a.snapshot(), b.snapshot())
    assert totals == {"flushes": 1, "gets": 5}


def test_status_envelope_shape():
    reg = MetricsRegistry("rm", "rm")
    env = status_envelope("rm", "rm", reg.snapshot(), global_tf=3)
    assert env["component"] == "rm"
    assert env["addr"] == "rm"
    assert env["metrics"]["component"] == "rm"
    assert env["global_tf"] == 3
    assert "rm" in status_table(env)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_lifecycle_records_duration():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    span = tracer.begin("commit.rpc", txn="c0:1")
    assert span.open and span.duration is None
    clock.now = 0.25
    span.end(outcome="committed")
    assert not span.open
    assert span.duration == pytest.approx(0.25)
    assert span.tags["outcome"] == "committed"
    # idempotent
    clock.now = 9.0
    span.end()
    assert span.duration == pytest.approx(0.25)
    assert tracer.stage_summary()["commit.rpc"]["count"] == 1


def test_child_spans_nest_and_share_txn_key():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    parent = tracer.begin("commit.certify", txn="c0:7")
    clock.now = 0.1
    child = parent.child("commit.log_append", batch=3)
    assert child.txn == "c0:7"
    assert child.parent_id == parent.span_id
    clock.now = 0.3
    child.end()
    parent.end()
    assert tracer.children(parent) == [child]
    assert {s.stage for s in tracer.spans(txn="c0:7")} == {
        "commit.certify", "commit.log_append",
    }


def test_sum_durations_and_derived_record():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    s1 = tracer.begin("commit.certify", txn="c0:1")
    clock.now = 0.2
    s1.end()
    s2 = tracer.begin("commit.log_append", txn="c0:1")
    clock.now = 0.5
    s2.end()
    assert tracer.sum_durations(
        "c0:1", ("commit.certify", "commit.log_append")
    ) == pytest.approx(0.5)
    derived = tracer.record("commit.reply", 0.05, txn="c0:1")
    assert derived.duration == pytest.approx(0.05)
    assert tracer.stage_summary()["commit.reply"]["count"] == 1


def test_crash_truncated_spans_excluded_from_latency():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    ok = tracer.begin("flush.writeset", txn="c0:1")
    clock.now = 0.1
    ok.end()
    doomed = tracer.begin("flush.writeset", txn="c0:2")
    clock.now = 50.0  # crash happens; span never ends
    victims = tracer.truncate_open(lambda s: s.stage == "flush.writeset")
    assert victims == [doomed]
    summary = tracer.stage_summary()["flush.writeset"]
    assert summary["count"] == 1          # only the finished span
    assert summary["truncated"] == 1      # the crashed one is visible
    assert summary["max"] == pytest.approx(0.1)
    assert tracer.truncated_spans() == [doomed]
    assert tracer.open_spans() == []


def test_stage_with_only_truncated_spans_reports_zero_latency():
    tracer = SpanTracer(FakeClock())
    tracer.begin("wal.sync")
    tracer.truncate_open(lambda s: True)
    summary = tracer.stage_summary()["wal.sync"]
    assert summary["count"] == 0
    assert summary["truncated"] == 1


def test_tracer_for_is_shared_per_kernel():
    kernel = Kernel(seed=1)
    assert tracer_for(kernel) is tracer_for(kernel)
    other = Kernel(seed=1)
    assert tracer_for(kernel) is not tracer_for(other)


def test_spans_table_renders_stage_rows():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    span = tracer.begin("commit.rpc")
    clock.now = 0.01
    span.end()
    tracer.begin("flush.region")
    tracer.truncate_open(lambda s: s.stage == "flush.region")
    table = spans_table(tracer.stage_summary())
    assert "commit.rpc" in table
    assert "flush.region" in table
