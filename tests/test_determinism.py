"""End-to-end determinism: identical seeds reproduce identical runs,
including failure scenarios -- the property every benchmark and failure
test in this repository relies on."""

from repro import ClusterConfig, SimCluster
from repro.workload import WorkloadDriver


def failover_fingerprint(seed):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 4000
    config.workload.n_clients = 10
    config.kv.n_regions = 4
    config.kv.wal_sync_interval = 300.0
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    driver = WorkloadDriver(cluster)
    cluster.after(4.0, lambda: cluster.crash_server(0))
    result = driver.run(duration=12.0, target_tps=80.0)
    rm = cluster.rm_status()
    return (
        result.committed,
        result.aborted,
        result.failed,
        round(result.latency.mean, 12),
        round(result.latency.percentile(99), 12),
        rm["replayed_fragments"],
        rm["server_region_recoveries"],
        cluster.kernel.event_count,
        round(cluster.kernel.now, 9),
    )


def test_failover_run_is_bit_reproducible():
    assert failover_fingerprint(777) == failover_fingerprint(777)


def test_different_seeds_diverge():
    assert failover_fingerprint(777) != failover_fingerprint(778)
