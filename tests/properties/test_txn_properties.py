"""Property-based tests for transaction-manager components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import SeededRng, zipfian_sampler
from repro.txn import SICertifier, WriteSet
from repro.txn.log import LogRecord


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 5)), min_size=1, max_size=60
    )
)
@settings(max_examples=200, deadline=None)
def test_certifier_matches_first_committer_wins_model(txns):
    """Sequential certify/record must equal the brute-force SI rule:
    conflict iff some write key was committed after the snapshot."""
    certifier = SICertifier(horizon=10_000)
    history = []  # (commit_ts, keys)
    next_ts = 1
    for snapshot_age, key_base in txns:
        start_ts = max(0, next_ts - 1 - snapshot_age)
        keys = [("t", f"k{key_base + i}", "f") for i in range(2)]
        expected_conflict = any(
            ts > start_ts and any(k in recorded for k in keys)
            for ts, recorded in history
        )
        got = certifier.certify(start_ts, keys)
        assert (got is not None) == expected_conflict
        if got is None:
            certifier.record(next_ts, keys)
            history.append((next_ts, set(keys)))
            next_ts += 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(0, 8),
            st.integers(0, 100),
        ),
        max_size=50,
    ),
    st.integers(1, 1000),
)
@settings(max_examples=200, deadline=None)
def test_writeset_stamping_reflects_last_write(ops, commit_ts):
    ws = WriteSet()
    model = {}
    for kind, key_idx, value in ops:
        row = f"r{key_idx}"
        if kind == "put":
            ws.put("t", row, "f", value)
            model[row] = value
        else:
            ws.delete("t", row, "f")
            model[row] = None
    cells = ws.stamped_cells("t", commit_ts)
    assert len(cells) == len(model)
    assert all(ts == commit_ts for _r, _c, ts, _v in cells)
    assert {r: v for r, _c, _ts, v in cells} == model
    assert [r for r, *_ in cells] == sorted(model)


@given(st.integers(1, 5000), st.floats(0.01, 0.999))
@settings(max_examples=50, deadline=None)
def test_zipfian_sampler_stays_in_domain(n, theta):
    sample = zipfian_sampler(n, theta, SeededRng(9))
    for _ in range(200):
        value = sample()
        assert 0 <= value < n


@given(
    st.lists(st.integers(1, 10_000), min_size=1, max_size=50, unique=True),
    st.integers(0, 10_000),
)
@settings(max_examples=200, deadline=None)
def test_log_fetch_truncate_model(timestamps, pivot):
    """fetch(after) and truncate(up_to) behave like the obvious list model."""
    from repro.config import TxnSettings
    from repro.sim import Kernel, Network, Node
    from repro.txn.log import RecoveryLog

    k = Kernel()
    host = Node(k, Network(k), "tm")
    log = RecoveryLog(host, TxnSettings(group_commit_interval=0.0))
    ordered = sorted(timestamps)
    events = [
        log.append(LogRecord(ts, "c", {"t": []}, nbytes=64)) for ts in ordered
    ]

    def waiter():
        yield k.all_of(events)

    k.run_until_complete(k.process(waiter()))
    got = [r.commit_ts for r in log.fetch(pivot)]
    assert got == [ts for ts in ordered if ts > pivot]
    dropped = log.truncate(pivot)
    assert dropped == len([ts for ts in ordered if ts < pivot])
    assert [r.commit_ts for r in log.fetch(0)] == [ts for ts in ordered if ts >= pivot]
