"""Randomised cross-shard workloads against the sharded TM.

Each case drives two concurrent writers over a keyspace whose rows hash
across every TM shard (so most multi-row transactions are cross-shard),
injects a TM-shard crash *triggered by a specific commit stage* --
prepare recorded at a participant, decision registered at the authority,
decision fan-out applied -- restarts the shard, lets the middleware
converge, and audits the full contract:

* every acknowledged commit durably readable (zero ledger violations);
* zero snapshot-isolation anomalies, including ``cross_shard_atomicity``
  (the offline checker sees the per-write ``owners`` metadata);
* zero online threshold-invariant violations (per-shard rules included);
* no transaction left permanently in-doubt (convergence requires every
  shard's prepare journal drained).

The sweep rotates seeds through shard counts {2, 4} and the three crash
stages; shard count 1 is covered by the determinism tests below, which
pin the bit-for-bit guarantee: a ``tm_shards=1`` cluster produces the
same canonical history export as the default (pre-sharding) single-TM
configuration, with no sharded fields leaking into events.
"""

import pytest

from repro.cluster import TABLE, SimCluster
from repro.config import ClusterConfig
from repro.errors import TxnConflict
from repro.kvstore.keys import row_key
from repro.sim.chaos import preload_value_fn
from repro.sim.events import Interrupt
from repro.workload.verify import CommitLedger

N_ROWS = 300
STAGES = ("prepare", "decide", "fanout")


def _build(seed: int, n_shards: int) -> SimCluster:
    config = ClusterConfig(seed=seed)
    config.txn.tm_shards = n_shards
    config.workload.n_rows = N_ROWS
    config.kv.n_region_servers = 2
    config.kv.n_regions = 4
    # The store alone would lose data on failure: durability across the
    # shard crash rests entirely on the recovery middleware.
    config.kv.wal_sync_interval = 300.0
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.server_heartbeat_interval = 0.5
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


def _counter(tm, name: str) -> int:
    return tm.metrics()["counters"].get(name, 0)


def _spawn_writers(cluster, ledger, n_writers=2, writes_per_txn=4):
    writers = [cluster.add_client(f"w{i}") for i in range(n_writers)]

    def loop(handle, wid):
        rng = cluster.kernel.rng.substream(f"sharded.writer.{wid}")
        counter = 0
        try:
            while True:
                counter += 1
                rows = sorted(rng.sample(range(N_ROWS), writes_per_txn))
                ctx = None
                try:
                    ctx = yield from handle.txn.begin()
                    for i in rows:
                        handle.txn.write(
                            ctx, TABLE, row_key(i), f"{wid}.{counter}"
                        )
                    yield from handle.txn.commit(ctx)
                    ledger.record(ctx, TABLE)
                except Interrupt:
                    raise
                except TxnConflict:
                    ledger.record_outcome(ctx)
                except Exception:
                    pass  # unacknowledged: no durability claim to audit
                yield handle.node.sleep(rng.uniform(0.02, 0.06))
        except Interrupt:
            return

    for i, handle in enumerate(writers):
        proc = handle.node.spawn(loop(handle, f"w{i}"), name=f"writer{i}")
        proc.defuse()
    return writers


def _stage_watcher(cluster, stage: str, trace: list):
    """Crash the stage-appropriate TM shard the moment the stage has
    demonstrably run at least once, then restart it after a dwell."""

    def victim_ready() -> int:
        tms = cluster.tms
        if stage == "prepare":
            # A participant holds a durable prepare record.
            for i, tm in enumerate(tms[1:], start=1):
                if _counter(tm, "prepares") >= 1:
                    return i
        elif stage == "decide":
            # The authority registered a cross-shard decision.
            if (
                _counter(tms[0], "decide_commits")
                + _counter(tms[0], "decide_aborts")
                >= 1
            ):
                return 0
        elif stage == "fanout":
            # A participant applied a fanned-out decision.
            for i, tm in enumerate(tms[1:], start=1):
                if _counter(tm, "decisions_applied") >= 1:
                    return i
        return -1

    def watcher():
        try:
            while True:
                yield cluster.kernel.timeout(0.05)
                victim = victim_ready()
                if victim < 0:
                    continue
                trace.append((round(cluster.kernel.now, 6), stage, victim))
                cluster.crash_tm_shard(victim)
                yield cluster.kernel.timeout(1.5)
                cluster.restart_tm_shard(victim)
                return
        except Interrupt:
            return

    proc = cluster.kernel.process(watcher())
    proc.defuse()


def _settle(cluster, budget: float = 30.0) -> bool:
    deadline = cluster.kernel.now + budget
    while cluster.kernel.now < deadline:
        cluster.run_until(cluster.kernel.now + 1.0)
        rm = cluster.rm_status()
        if (
            rm["global_tp"] == rm["global_tf"]
            and rm["global_tf"] > 0
            and not rm["recovering"]
            and all(tm.alive for tm in cluster.tms)
            and not any(
                getattr(tm, "_prepared", None) for tm in cluster.tms
            )
        ):
            return True
    return False


def _run_case(seed: int, n_shards: int, stage: str) -> dict:
    cluster = _build(seed, n_shards)
    recorder = cluster.attach_history_recorder()
    monitor = cluster.attach_invariant_monitor()
    ledger = CommitLedger()
    writers = _spawn_writers(cluster, ledger)
    trace: list = []
    _stage_watcher(cluster, stage, trace)

    # Long enough for crash (stage-triggered, ~1 s in) + 1.5 s dwell +
    # the 5 s sharded commit timeout + a post-restart retry, so every
    # writer commits again after the shard comes back (an idle writer
    # would pin its T_F(c), and with it global T_F, at zero).
    cluster.run_until(10.0)
    for handle in writers:
        if handle.node.alive:
            for proc in list(handle.node._procs):
                if proc.name and "writer" in proc.name:
                    proc.interrupt("test over")
    converged = _settle(cluster)
    monitor.check_once()

    from repro.check import SIChecker

    check = SIChecker(
        recorder.events, initial_value=preload_value_fn(N_ROWS)
    ).check()
    violations = [str(v) for v in ledger.verify(cluster)]
    return {
        "acked": len(ledger),
        "converged": converged,
        "crashes": trace,
        "violations": violations,
        "anomalies": [str(a) for a in check.anomalies],
        "cross_shard_txns": check.counters.get("cross_shard_txns"),
        "invariant_violations": monitor.violations,
        "indoubt": sum(
            len(getattr(tm, "_prepared", ())) for tm in cluster.tms
        ),
        "history": recorder.to_json(seed=seed),
    }


#: Each seed is one storm; shard count and crash stage rotate so the
#: sweep covers every (shards, stage) combination several times over.
SEEDS = list(range(1, 21))


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_commit_upholds_contract(seed):
    n_shards = (2, 4)[seed % 2]
    stage = STAGES[seed % 3]
    result = _run_case(seed, n_shards, stage)
    detail = (
        f"seed={seed} shards={n_shards} stage={stage} "
        f"acked={result['acked']} crashes={result['crashes']}"
    )
    assert result["acked"] > 0, detail
    assert result["violations"] == [], f"{detail}: {result['violations']}"
    assert result["anomalies"] == [], f"{detail}: {result['anomalies']}"
    assert result["invariant_violations"] == [], (
        f"{detail}: {result['invariant_violations']}"
    )
    assert result["indoubt"] == 0, detail
    assert result["converged"], detail
    # The workload genuinely exercised cross-shard commits.
    assert result["cross_shard_txns"] > 0, detail


def test_crash_stages_actually_trigger():
    """Every stage watcher fires (the crash is real, not a no-op)."""
    for seed, stage in zip((5, 6, 7), STAGES):
        result = _run_case(seed, 2, stage)
        assert result["crashes"], f"stage {stage} never triggered"
        assert result["crashes"][0][1] == stage


def test_same_seed_same_shards_reproduces_history():
    first = _run_case(3, 2, "decide")
    second = _run_case(3, 2, "decide")
    assert first["history"] == second["history"]
    assert first["crashes"] == second["crashes"]


def _history_for_single_tm(seed: int, explicit_shard_count: bool) -> str:
    """Canonical history export of a crash-free single-TM workload."""
    config = ClusterConfig(seed=seed)
    if explicit_shard_count:
        config.txn.tm_shards = 1
    config.workload.n_rows = N_ROWS
    config.kv.n_region_servers = 2
    config.kv.n_regions = 4
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    recorder = cluster.attach_history_recorder()
    ledger = CommitLedger()
    writers = _spawn_writers(cluster, ledger)
    cluster.run_until(3.0)
    for handle in writers:
        for proc in list(handle.node._procs):
            if proc.name and "writer" in proc.name:
                proc.interrupt("test over")
    cluster.run_until(cluster.kernel.now + 2.0)
    return recorder.to_json(seed=seed)


@pytest.mark.parametrize("seed", (2, 9))
def test_shard_count_one_is_bit_identical_to_single_tm(seed):
    """``tm_shards=1`` must not perturb the calibrated single-TM schedule:
    the same-seed canonical history export is byte-identical to the
    default configuration's (the pre-sharding wiring), and no sharded
    metadata leaks into the events."""
    explicit = _history_for_single_tm(seed, explicit_shard_count=True)
    default = _history_for_single_tm(seed, explicit_shard_count=False)
    assert explicit == default
    assert '"owners"' not in explicit
    assert "tf_shards" not in explicit
