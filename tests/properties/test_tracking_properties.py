"""Property-based tests for the threshold trackers (DESIGN.md invariant 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracking import FlushTracker, PersistTracker
from repro.sim import Kernel


def drive(kernel, gen):
    return kernel.run_until_complete(kernel.process(gen))


@st.composite
def commit_flush_schedules(draw):
    """Random interleavings: commits in ts order, flush completions in any
    order, possibly leaving a suffix unflushed."""
    n = draw(st.integers(min_value=1, max_value=30))
    commit_ts = list(range(1, n + 1))
    n_flushed = draw(st.integers(min_value=0, max_value=n))
    flushed = draw(st.permutations(commit_ts))[:n_flushed]
    # Advance points: after which events to call advance().
    return commit_ts, flushed


@given(commit_flush_schedules())
@settings(max_examples=200, deadline=None)
def test_tf_is_exactly_the_longest_flushed_prefix(schedule):
    commit_ts, flushed = schedule
    k = Kernel()
    tracker = FlushTracker(k)
    for ts in commit_ts:
        drive(k, tracker.note_commit(ts))
    for ts in flushed:
        drive(k, tracker.note_flushed(ts))
        tracker.advance()
    # Model: T_F(c) is the largest ts such that every commit <= it flushed.
    flushed_set = set(flushed)
    expected = 0
    for ts in commit_ts:
        if ts in flushed_set:
            expected = ts
        else:
            break
    assert tracker.tf == expected


@given(
    st.lists(
        st.tuples(st.sampled_from(["commit", "flush", "advance"]), st.integers(0, 50)),
        max_size=120,
    )
)
@settings(max_examples=150, deadline=None)
def test_tf_monotonic_and_bounded_under_arbitrary_call_sequences(events):
    """T_F never decreases and never passes an unflushed commit, no matter
    how commits/flushes/heartbeat-drains interleave."""
    k = Kernel()
    tracker = FlushTracker(k)
    next_ts = 1
    committed = []
    flushed = set()
    last_tf = 0
    for kind, arg in events:
        if kind == "commit":
            committed.append(next_ts)
            drive(k, tracker.note_commit(next_ts))
            next_ts += 1
        elif kind == "flush":
            pending = [ts for ts in committed if ts not in flushed]
            if not pending:
                continue
            ts = pending[arg % len(pending)]
            flushed.add(ts)
            drive(k, tracker.note_flushed(ts))
        else:
            tracker.advance()
            assert tracker.tf >= last_tf, "T_F must be monotone"
            last_tf = tracker.tf
            unflushed = [ts for ts in committed if ts not in flushed]
            if unflushed:
                assert tracker.tf < min(unflushed), (
                    "T_F passed a commit whose flush has not completed"
                )


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["sync", "piggyback", "fragment"]),
            st.integers(0, 1000),
        ),
        max_size=100,
    )
)
@settings(max_examples=150, deadline=None)
def test_persist_tracker_report_never_exceeds_unpersisted_inheritance(ops):
    """Whenever an inherited T_P is outstanding (not yet covered by a
    completed sync), the reported value must not exceed it."""
    k = Kernel()
    tracker = PersistTracker(k)
    outstanding = None  # lowest piggyback not yet covered by a sync
    max_tf_seen = 0
    for kind, arg in ops:
        if kind == "fragment":
            tracker.note_fragment()
        elif kind == "piggyback":
            tracker.note_piggyback(arg)
            outstanding = arg if outstanding is None else min(outstanding, arg)
        else:
            tf = max_tf_seen + (arg % 10)
            max_tf_seen = tf
            tracker.begin_sync()
            tracker.complete_sync(tf)
            outstanding = None  # everything received is durable now
        if outstanding is not None:
            assert tracker.report_value() <= outstanding
        assert tracker.report_value() <= max(tracker.tp, tracker.tp)
