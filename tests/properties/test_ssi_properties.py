"""Serializable SSI mode: divergence from SI, chaos sweep, byte-identity.

Three property families pin the new ``txn.isolation="ssi"`` mode:

* **Divergence** -- the classic write-skew interleaving (two txns read
  {x, y} at the same snapshot, each writes the key the other read) is
  run twice: under SI both commits succeed and the recorded history's
  serialization graph carries an rw-rw cycle; under SSI the second
  committer aborts at certification and the history is acyclic.  Both
  the single-TM and the sharded-TM (authority-RPC) certification paths
  are covered.

* **Chaos** -- a 20-seed sweep of randomised cross-shard workloads under
  SSI with a TM-shard crash triggered mid-certification (rotating the
  prepare / decide / fanout stages, so the authority holding the SSI
  window is among the victims), asserting zero lost commits, zero SI
  anomalies, zero serializability cycles, zero invariant violations,
  and full convergence.

* **Byte-identity** -- ``txn.isolation="si"`` (explicit or default)
  produces byte-identical canonical history exports with no ``reads``
  fields on the wire: the SSI machinery must be invisible until opted
  into.
"""

import pytest

from repro.check import SerializabilityChecker, SIChecker
from repro.cluster import TABLE, SimCluster
from repro.config import ClusterConfig
from repro.errors import TxnConflict
from repro.kvstore.keys import row_key
from repro.sim.chaos import preload_value_fn
from repro.sim.events import Interrupt
from repro.workload.verify import CommitLedger

N_ROWS = 300
STAGES = ("prepare", "decide", "fanout")


def _build(seed: int, n_shards: int, isolation: str) -> SimCluster:
    config = ClusterConfig(seed=seed)
    config.txn.tm_shards = n_shards
    config.txn.isolation = isolation
    config.workload.n_rows = N_ROWS
    config.kv.n_region_servers = 2
    config.kv.n_regions = 4
    config.kv.wal_sync_interval = 300.0
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.server_heartbeat_interval = 0.5
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


# ----------------------------------------------------------------------
# divergence: write skew commits under SI, aborts under SSI
# ----------------------------------------------------------------------
def _run_write_skew(isolation: str, n_shards: int = 1):
    """The canonical write-skew interleaving; returns (outcomes, events)."""
    cluster = _build(seed=11, n_shards=n_shards, isolation=isolation)
    recorder = cluster.attach_history_recorder()
    a = cluster.add_client("a")
    b = cluster.add_client("b")
    outcome = {}

    def scenario():
        ctx_a = yield from a.txn.begin()
        ctx_b = yield from b.txn.begin()
        # Both observe the same snapshot of {x, y} ...
        yield from a.txn.read(ctx_a, TABLE, row_key(0))
        yield from a.txn.read(ctx_a, TABLE, row_key(1))
        yield from b.txn.read(ctx_b, TABLE, row_key(0))
        yield from b.txn.read(ctx_b, TABLE, row_key(1))
        # ... and each writes the key the *other* read (disjoint
        # write-sets: first-committer-wins alone cannot object).
        a.txn.write(ctx_a, TABLE, row_key(1), "a-skew")
        b.txn.write(ctx_b, TABLE, row_key(0), "b-skew")
        try:
            yield from a.txn.commit(ctx_a)
            outcome["a"] = "committed"
        except TxnConflict:
            outcome["a"] = "aborted"
        try:
            yield from b.txn.commit(ctx_b)
            outcome["b"] = "committed"
        except TxnConflict:
            outcome["b"] = "aborted"

    cluster.run(scenario())
    return outcome, recorder.events


@pytest.mark.parametrize("n_shards", (1, 2))
def test_write_skew_commits_under_si_and_its_cycle_is_flagged(n_shards):
    outcome, events = _run_write_skew("si", n_shards=n_shards)
    assert outcome == {"a": "committed", "b": "committed"}
    # SI itself is clean (disjoint write-sets, one snapshot each) ...
    si = SIChecker(events).check()
    assert si.ok, si.anomalies
    # ... but the serialization graph has the rw-rw cycle, which the
    # strict audit flags and the Fekete-lenient si audit tolerates.
    strict = SerializabilityChecker(events, mode="ssi").check()
    assert [a.kind for a in strict.anomalies] == ["serializability_cycle"]
    lenient = SerializabilityChecker(events, mode="si").check()
    assert lenient.ok, lenient.anomalies
    assert lenient.counters["permitted_si_cycles"] == 1


@pytest.mark.parametrize("n_shards", (1, 2))
def test_write_skew_aborts_under_ssi_and_history_is_acyclic(n_shards):
    outcome, events = _run_write_skew("ssi", n_shards=n_shards)
    # The first committer wins; the second is the pivot and must abort.
    assert outcome == {"a": "committed", "b": "aborted"}
    report = SerializabilityChecker(events, mode="ssi").check()
    assert report.ok, report.anomalies
    assert report.counters["cycles"] == 0
    si = SIChecker(events).check()
    assert si.ok, si.anomalies


# ----------------------------------------------------------------------
# chaos: 20-seed SSI sweep with TM-shard crashes mid-certification
# ----------------------------------------------------------------------
def _counter(tm, name: str) -> int:
    return tm.metrics()["counters"].get(name, 0)


def _spawn_writers(cluster, ledger, n_writers=2, writes_per_txn=4,
                   reads_per_txn=3):
    writers = [cluster.add_client(f"w{i}") for i in range(n_writers)]

    def loop(handle, wid):
        rng = cluster.kernel.rng.substream(f"ssi.writer.{wid}")
        counter = 0
        try:
            while True:
                counter += 1
                # Half the writes and all the reads land in a 40-row hot
                # prefix, so rw antidependencies between concurrent
                # writers actually arise (and get certified) instead of
                # vanishing into the keyspace.
                rows = sorted(set(
                    rng.sample(range(40), 2)
                    + rng.sample(range(40, N_ROWS), writes_per_txn - 2)
                ))
                reads = sorted(rng.sample(range(40), reads_per_txn))
                ctx = None
                try:
                    ctx = yield from handle.txn.begin()
                    for i in reads:
                        yield from handle.txn.read(ctx, TABLE, row_key(i))
                    for i in rows:
                        handle.txn.write(
                            ctx, TABLE, row_key(i), f"{wid}.{counter}"
                        )
                    yield from handle.txn.commit(ctx)
                    ledger.record(ctx, TABLE)
                except Interrupt:
                    raise
                except TxnConflict:
                    ledger.record_outcome(ctx)
                except Exception:
                    pass  # unacknowledged: no durability claim to audit
                yield handle.node.sleep(rng.uniform(0.02, 0.06))
        except Interrupt:
            return

    for i, handle in enumerate(writers):
        proc = handle.node.spawn(loop(handle, f"w{i}"), name=f"writer{i}")
        proc.defuse()
    return writers


def _stage_watcher(cluster, stage: str, trace: list):
    """Crash the stage-appropriate TM shard once the stage has
    demonstrably run, then restart it after a dwell.  The ``decide``
    stage targets the authority (tm0) -- the shard holding the SSI
    window -- mid-certification."""

    def victim_ready() -> int:
        tms = cluster.tms
        if stage == "prepare":
            for i, tm in enumerate(tms[1:], start=1):
                if _counter(tm, "prepares") >= 1:
                    return i
        elif stage == "decide":
            if (
                _counter(tms[0], "decide_commits")
                + _counter(tms[0], "decide_aborts")
                >= 1
            ):
                return 0
        elif stage == "fanout":
            for i, tm in enumerate(tms[1:], start=1):
                if _counter(tm, "decisions_applied") >= 1:
                    return i
        return -1

    def watcher():
        try:
            while True:
                yield cluster.kernel.timeout(0.05)
                victim = victim_ready()
                if victim < 0:
                    continue
                trace.append((round(cluster.kernel.now, 6), stage, victim))
                cluster.crash_tm_shard(victim)
                yield cluster.kernel.timeout(1.5)
                cluster.restart_tm_shard(victim)
                return
        except Interrupt:
            return

    proc = cluster.kernel.process(watcher())
    proc.defuse()


def _settle(cluster, budget: float = 30.0) -> bool:
    deadline = cluster.kernel.now + budget
    while cluster.kernel.now < deadline:
        cluster.run_until(cluster.kernel.now + 1.0)
        rm = cluster.rm_status()
        if (
            rm["global_tp"] == rm["global_tf"]
            and rm["global_tf"] > 0
            and not rm["recovering"]
            and all(tm.alive for tm in cluster.tms)
            and not any(
                getattr(tm, "_prepared", None) for tm in cluster.tms
            )
        ):
            return True
    return False


def _run_case(seed: int, n_shards: int, stage: str) -> dict:
    cluster = _build(seed, n_shards, "ssi")
    recorder = cluster.attach_history_recorder()
    monitor = cluster.attach_invariant_monitor()
    ledger = CommitLedger()
    writers = _spawn_writers(cluster, ledger)
    trace: list = []
    _stage_watcher(cluster, stage, trace)

    # Long enough for the stage-triggered crash (~1 s in) + 1.5 s dwell +
    # the 10 s begin-RPC timeout a writer can be stuck in when the
    # authority dies under its request, + a tail of post-restart commits.
    cluster.run_until(13.0)
    for handle in writers:
        if handle.node.alive:
            for proc in list(handle.node._procs):
                if proc.name and "writer" in proc.name:
                    proc.interrupt("test over")
    converged = _settle(cluster)
    monitor.check_once()

    si = SIChecker(
        recorder.events, initial_value=preload_value_fn(N_ROWS)
    ).check()
    ser = SerializabilityChecker(recorder.events, mode="ssi").check()
    violations = [str(v) for v in ledger.verify(cluster)]
    return {
        "acked": len(ledger),
        "converged": converged,
        "crashes": trace,
        "violations": violations,
        "anomalies": [str(a) for a in si.anomalies],
        "cycles": [str(a) for a in ser.anomalies],
        "graph": ser.counters,
        "invariant_violations": monitor.violations,
        "indoubt": sum(
            len(getattr(tm, "_prepared", ())) for tm in cluster.tms
        ),
        "history": recorder.to_json(seed=seed, isolation="ssi"),
    }


SEEDS = list(range(1, 21))


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_ssi_chaos_upholds_serializability(seed):
    n_shards = (2, 4)[seed % 2]
    stage = STAGES[seed % 3]
    result = _run_case(seed, n_shards, stage)
    detail = (
        f"seed={seed} shards={n_shards} stage={stage} "
        f"acked={result['acked']} crashes={result['crashes']}"
    )
    assert result["acked"] > 0, detail
    assert result["violations"] == [], f"{detail}: {result['violations']}"
    assert result["anomalies"] == [], f"{detail}: {result['anomalies']}"
    assert result["cycles"] == [], f"{detail}: {result['cycles']}"
    assert result["invariant_violations"] == [], (
        f"{detail}: {result['invariant_violations']}"
    )
    assert result["indoubt"] == 0, detail
    assert result["converged"], detail
    # The certification genuinely saw read-sets (not a vacuous pass).
    assert result["graph"]["edges_rw"] + result["graph"]["edges_wr"] > 0, detail
    assert '"reads"' in result["history"], detail


def test_ssi_chaos_is_deterministic():
    first = _run_case(3, 2, "decide")
    second = _run_case(3, 2, "decide")
    assert first["history"] == second["history"]
    assert first["crashes"] == second["crashes"]


# ----------------------------------------------------------------------
# byte-identity: SI mode must be bit-for-bit the pre-SSI schedule
# ----------------------------------------------------------------------
def _history_for(seed: int, isolation) -> str:
    """Canonical history export of a crash-free workload; ``isolation``
    None leaves the config at its default."""
    config = ClusterConfig(seed=seed)
    if isolation is not None:
        config.txn.isolation = isolation
    config.workload.n_rows = N_ROWS
    config.kv.n_region_servers = 2
    config.kv.n_regions = 4
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    recorder = cluster.attach_history_recorder()
    ledger = CommitLedger()
    writers = _spawn_writers(cluster, ledger)
    cluster.run_until(3.0)
    for handle in writers:
        for proc in list(handle.node._procs):
            if proc.name and "writer" in proc.name:
                proc.interrupt("test over")
    cluster.run_until(cluster.kernel.now + 2.0)
    return recorder.to_json(seed=seed)


@pytest.mark.parametrize("seed", (2, 9))
def test_si_mode_is_bit_identical_to_default(seed):
    """Explicit ``txn.isolation="si"`` must not perturb the calibrated
    schedule: the same-seed canonical history export is byte-identical
    to the default configuration's, and no SSI metadata (read-sets)
    leaks into events or onto the wire."""
    explicit = _history_for(seed, "si")
    default = _history_for(seed, None)
    assert explicit == default
    assert '"reads"' not in explicit


def test_ssi_mode_ships_read_sets(seed=2):
    """The same workload under SSI does carry ``reads`` on its commit
    attempts -- the knob is live, not silently ignored."""
    assert '"reads"' in _history_for(seed, "ssi")


def test_unknown_isolation_rejected():
    config = ClusterConfig(seed=0)
    config.txn.isolation = "serializable"
    with pytest.raises(ValueError):
        SimCluster(config).start()
