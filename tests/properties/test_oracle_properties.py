"""Oracle properties over seed-swept mixed workloads with failures.

The oracle's core promise: on a correctly-functioning cluster it stays
silent -- across many seeds, workload mixes, and mid-run server
crash/restart cycles -- and everything it records and reports is a pure
function of the seed (byte-identical across repeat runs).
"""

import pytest

from repro import ClusterConfig, SimCluster
from repro.check import SIChecker
from repro.workload import WorkloadDriver

SEEDS = list(range(300, 320))  # 20 seeds, disjoint from the chaos sweeps


def run_scenario(seed):
    """One compact mixed run: YCSB-A under a crash/restart, oracle on.

    Returns ``(history_json, report)`` so callers can assert cleanliness
    and determinism without re-running.
    """
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 1000
    config.workload.n_clients = 8
    config.kv.n_regions = 4
    config.kv.n_region_servers = 2
    config.zk.session_timeout = 1.0
    config.zk.tick_interval = 0.2
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.server_heartbeat_interval = 0.5
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()

    recorder = cluster.attach_history_recorder()
    monitor = cluster.attach_invariant_monitor(interval=0.25)

    # Vary the failure mode by seed so the sweep covers crash-only,
    # crash+restart, and calm runs rather than one scripted timeline.
    victim = seed % 2
    cluster.after(2.0, lambda: cluster.crash_server(victim))
    if seed % 3 != 0:
        def bring_back():
            rs = cluster.servers[victim]
            cluster.datanodes[victim].revive()

            def bring_up():
                # Wait until the master observed the death, or the
                # re-registration masks it and failover never runs.
                while rs.addr in cluster.master._live_servers:
                    yield cluster.kernel.timeout(0.25)
                yield from rs.restart()

            cluster.kernel.process(bring_up(), name="bring-up").defuse()
        cluster.after(5.0, bring_back)

    driver = WorkloadDriver(cluster, mix="A" if seed % 2 else None)
    driver.run(duration=8.0, target_tps=150.0)
    # Let recovery, replay, and post-commit flushes settle before judging.
    cluster.run_until(cluster.kernel.now + 12.0)

    report = SIChecker(recorder.events).check()
    return recorder.to_json(seed=seed), report, monitor


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_workload_with_failures_yields_clean_history(seed):
    _history, report, monitor = run_scenario(seed)
    assert report.ok, "\n".join(str(a) for a in report.anomalies)
    assert monitor.ok, monitor.violations
    # The run must have exercised the oracle, not vacuously passed.
    assert report.counters["committed"] > 0
    assert report.counters["reads_checked"] > 0
    assert monitor.samples > 0


def test_same_seed_history_and_report_are_byte_identical():
    seed = SEEDS[0]
    history1, report1, _ = run_scenario(seed)
    history2, report2, _ = run_scenario(seed)
    assert history1 == history2
    assert report1.to_json() == report2.to_json()
