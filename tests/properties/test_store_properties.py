"""Property-based tests for the store substrate (DESIGN.md invariant 9)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.keys import Cell
from repro.kvstore.memstore import MemStore
from repro.kvstore.sstable import best_version_in_block, build_blocks

rows = st.text(alphabet="abcdef", min_size=1, max_size=3)
versions = st.integers(min_value=1, max_value=40)
cells = st.lists(
    st.tuples(rows, versions, st.integers(0, 99)), min_size=0, max_size=60
)


@given(cells, rows, versions)
@settings(max_examples=300, deadline=None)
def test_memstore_get_matches_brute_force(entries, probe_row, snapshot):
    ms = MemStore()
    model = {}
    for row, version, value in entries:
        ms.put(Cell(row, "f", version, value))
        model[(row, version)] = value  # same-version overwrite, like the store
    got = ms.get(probe_row, "f", snapshot)
    candidates = [
        (version, value)
        for (row, version), value in model.items()
        if row == probe_row and version <= snapshot
    ]
    if not candidates:
        assert got is None
    else:
        version, value = max(candidates)
        assert got == (version, value, False)


@given(cells)
@settings(max_examples=200, deadline=None)
def test_memstore_flush_snapshot_preserves_all_reads(entries):
    """During and after a flush handoff, reads return the same values."""
    ms = MemStore()
    for row, version, value in entries:
        ms.put(Cell(row, "f", version, value))
    before = {
        (row, snap): ms.get(row, "f", snap)
        for row, version, _v in entries
        for snap in (version, version + 1)
    }
    ms.snapshot_for_flush()
    during = {key: ms.get(key[0], "f", key[1]) for key in before}
    assert during == before
    ms.abort_flush()
    after = {key: ms.get(key[0], "f", key[1]) for key in before}
    assert after == before


@given(cells, rows, rows, versions)
@settings(max_examples=200, deadline=None)
def test_memstore_scan_matches_brute_force(entries, start, end, snapshot):
    ms = MemStore()
    model = {}
    for row, version, value in entries:
        ms.put(Cell(row, "f", version, value))
        model[(row, version)] = value
    end_row = end if end > start else None
    got = ms.scan(start, end_row, snapshot)
    expected = {}
    for (row, version), value in model.items():
        if row < start or (end_row is not None and row >= end_row):
            continue
        if version > snapshot:
            continue
        current = expected.get(row)
        if current is None or version > current[0]:
            expected[row] = (version, value)
    flattened = {
        row: (hit[0], hit[1]) for row, columns in got.items()
        for _col, hit in columns.items()
    }
    assert flattened == expected


@given(
    st.lists(st.tuples(rows, versions), min_size=1, max_size=80, unique=True),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=200, deadline=None)
def test_build_blocks_partitions_losslessly(pairs, rows_per_block):
    data = sorted(
        (Cell(r, "f", v, f"{r}:{v}") for r, v in pairs),
        key=lambda c: (c.row, c.version),
    )
    index, blocks = build_blocks(data, rows_per_block)
    # Lossless: every cell lands in exactly one block.
    flat = [c for block in blocks for c in block]
    assert len(flat) == len(data)
    assert sorted(flat) == sorted(c.to_wire() for c in data)
    # Index entries are the first row of each block, ascending.
    assert index == [block[0][0] for block in blocks]
    assert index == sorted(index)
    # No block exceeds the row budget.
    for block in blocks:
        assert len({c[0] for c in block}) <= rows_per_block
    # A row's cells never straddle blocks.
    seen = {}
    for i, block in enumerate(blocks):
        for c in block:
            seen.setdefault(c[0], set()).add(i)
    assert all(len(s) == 1 for s in seen.values())


@given(
    st.lists(st.tuples(rows, versions), min_size=1, max_size=50, unique=True),
    rows,
    versions,
)
@settings(max_examples=300, deadline=None)
def test_block_lookup_matches_brute_force(pairs, probe_row, snapshot):
    data = sorted(
        (Cell(r, "f", v, f"{r}:{v}") for r, v in pairs),
        key=lambda c: (c.row, c.version),
    )
    from repro.kvstore.sstable import SSTable

    index, blocks = build_blocks(data, rows_per_block=4)
    sst = SSTable(path="/x", index=index)
    idx = sst.block_for_row(probe_row)
    expected = [
        (v, f"{probe_row}:{v}")
        for r, v in pairs
        if r == probe_row and v <= snapshot
    ]
    if idx is None:
        assert not expected  # row precedes the table: must not exist
        return
    got = best_version_in_block(blocks[idx], probe_row, "f", snapshot)
    if expected:
        assert got == max(expected)
    else:
        assert got is None
