"""Checksum verification, cross-replica repair, and salvaging reads."""

import pytest

from repro.config import DiskFaultSettings
from repro.dfs import DataNode, DfsClient, NameNode
from repro.errors import DfsError
from repro.sim import Kernel, Network, Node


@pytest.fixture
def cluster():
    k = Kernel(seed=21)
    net = Network(k)
    nn = NameNode(k, net)
    dns = [DataNode(k, net, f"dn{i}") for i in range(3)]
    host = Node(k, net, "host")
    client = DfsClient(host, replication=2)
    k.run(until=0.01)
    return k, net, nn, dns, host, client


def run(k, gen):
    return k.run_until_complete(k.process(gen))


def replica_holders(dns, path):
    return [dn for dn in dns if dn.replica(path) is not None]


def write_file(k, client, path, n=5):
    replicas = run(k, client.create(path))
    run(k, client.append(path, [(f"r{i}", 50) for i in range(n)]))
    return replicas


class TestVerifiedReads:
    def test_records_are_framed_with_crcs(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        stored = replica_holders(dns, "/t/f")[0].replica("/t/f")
        assert all(r.crc is not None for r in stored.records)
        assert all(r.state == "ok" for r in stored.records)

    def test_read_skips_damaged_replica(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        replicas = write_file(k, client, "/t/f")
        # Damage the replica the client tries first.
        first = next(dn for dn in dns if dn.addr == replicas[0])
        first.replica("/t/f").records[2].damage()
        data = run(k, client.read_all("/t/f"))
        assert [p for p, _n in data] == [f"r{i}" for i in range(5)]
        assert client.corrupt_reads == 1

    def test_read_repairs_damaged_replica_in_background(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        replicas = write_file(k, client, "/t/f")
        bad = next(dn for dn in dns if dn.addr == replicas[0])
        bad.replica("/t/f").records[2].damage()
        run(k, client.read_all("/t/f"))
        k.run(until=k.now + 1.0)  # let the repair cast land
        assert client.records_repaired == 1
        assert bad.repairs_received == 1
        assert bad.replica("/t/f").records[2].state == "ok"
        # A second read sees two healthy replicas again.
        client.corrupt_reads = 0
        run(k, client.read_all("/t/f"))
        assert client.corrupt_reads == 0

    def test_read_fails_when_every_replica_is_damaged(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        for dn in replica_holders(dns, "/t/f"):
            dn.replica("/t/f").records[0].damage()
        with pytest.raises(DfsError, match="damaged"):
            run(k, client.read_all("/t/f"))

    def test_repair_refuses_to_clobber_good_records(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        dn = replica_holders(dns, "/t/f")[0]
        result = run(k, dn.rpc_repair_record("host", "/t/f", 1, "evil", 50))
        assert result is False
        assert dn.replica("/t/f").records[1].payload == "r1"


class TestSalvagingRead:
    def test_clean_file_reports_clean(self, cluster):
        k, _net, _nn, _dns, _host, client = cluster
        write_file(k, client, "/t/f")
        records, report = run(k, client.read_all_salvaged("/t/f"))
        assert len(records) == 5
        assert report.clean
        assert client.salvages == 0

    def test_merges_damage_at_different_indices(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        a, b = replica_holders(dns, "/t/f")
        a.replica("/t/f").records[1].damage()
        b.replica("/t/f").records[3].damage()
        records, report = run(k, client.read_all_salvaged("/t/f"))
        assert [p for p, _n in records] == [f"r{i}" for i in range(5)]
        assert report.repaired == 2  # both salvaged from the peer
        assert report.dropped == 0
        assert not report.clean
        assert client.salvage_reports[-1] is report

    def test_truncates_where_no_replica_is_intact(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        for dn in replica_holders(dns, "/t/f"):
            dn.replica("/t/f").records[2].damage()
        records, report = run(k, client.read_all_salvaged("/t/f"))
        assert [p for p, _n in records] == ["r0", "r1"]
        assert report.reason == "corrupt-record"
        assert report.dropped == 3
        assert client.salvages == 1

    def test_repairs_salvageable_copies(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        bad = replica_holders(dns, "/t/f")[0]
        bad.replica("/t/f").records[0].damage()
        run(k, client.read_all_salvaged("/t/f"))
        k.run(until=k.now + 1.0)
        assert bad.replica("/t/f").records[0].state == "ok"
        assert bad.repairs_received == 1

    def test_survives_one_dead_replica(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f")
        a, b = replica_holders(dns, "/t/f")
        b.replica("/t/f").records[4].damage()
        a.crash()
        records, report = run(k, client.read_all_salvaged("/t/f"))
        # Only the damaged replica is reachable: its rot truncates.
        assert [p for p, _n in records] == [f"r{i}" for i in range(4)]
        assert report.reason == "corrupt-record"


class TestCrashTearing:
    def make_torn(self, cluster, n=6):
        """Crash a datanode holding an un-synced tail with tearing on."""
        k, _net, _nn, dns, _host, client = cluster
        run(k, client.create("/t/f"))
        run(k, client.append("/t/f", [(f"r{i}", 50) for i in range(3)]))
        dn = replica_holders(dns, "/t/f")[0]
        stored = dn.replica("/t/f")
        # Simulate acknowledged-but-volatile records (lying fsync): extend
        # the replica beyond its synced watermark.
        for i in range(3, n):
            stored.records.append(dn._store(f"r{i}", 50))
        dn.disk.configure_faults(torn_write_probability=1.0)
        dn.crash()
        return k, dns, client, dn, stored

    def test_crash_tears_the_unsynced_tail(self, cluster):
        _k, _dns, _client, dn, stored = self.make_torn(cluster)
        # A prefix of the tail landed, one record is torn, rest are gone.
        assert stored.synced == len(stored.records)
        assert 3 < len(stored.records) <= 6
        assert stored.records[-1].state == "torn"
        assert all(r.state == "ok" for r in stored.records[:-1])
        assert dn.disk.torn_writes == 1

    def test_clean_crash_discards_the_tail(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        run(k, client.create("/t/f"))
        run(k, client.append("/t/f", [("a", 50)]))
        dn = replica_holders(dns, "/t/f")[0]
        stored = dn.replica("/t/f")
        stored.records.append(dn._store("volatile", 50))
        dn.crash()  # torn_write_probability is 0
        assert [r.payload for r in stored.records] == ["a"]

    def test_cloning_preserves_damage(self, cluster):
        k, _net, _nn, dns, _host, client = cluster
        write_file(k, client, "/t/f", n=3)
        src = replica_holders(dns, "/t/f")[0]
        src.replica("/t/f").records[1].damage()
        spare = next(dn for dn in dns if dn.replica("/t/f") is None)

        def clone():
            result = yield from src.rpc_clone_to("test", "/t/f", spare.addr)
            return result

        run(k, clone())
        cloned = spare.replica("/t/f")
        assert cloned is not None
        assert cloned.records[1].state == "corrupt"
        assert cloned.records[0].state == "ok"
