"""Unit and integration tests for the simulated distributed filesystem."""

import pytest

from repro.config import DiskSettings
from repro.dfs import DataNode, DfsClient, NameNode
from repro.errors import DfsError, FileAlreadyExists, FileNotFound, RemoteError
from repro.sim import Kernel, Network, Node


@pytest.fixture
def cluster():
    k = Kernel(seed=1)
    net = Network(k)
    nn = NameNode(k, net)
    dns = [DataNode(k, net, f"dn{i}") for i in range(3)]
    host = Node(k, net, "host")
    client = DfsClient(host, replication=2)
    k.run(until=0.01)  # let datanode registrations land
    return k, net, nn, dns, host, client


def run(k, gen):
    """Drive a client generator to completion and return its value."""
    return k.run_until_complete(k.process(gen))


def test_create_assigns_replicas(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    replicas = run(k, client.create("/t/file1"))
    assert len(replicas) == 2
    assert all(r.startswith("dn") for r in replicas)


def test_create_prefers_local_datanode(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    replicas = run(k, client.create("/t/file1", preferred="dn2"))
    assert replicas[0] == "dn2"


def test_double_create_fails(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    run(k, client.create("/t/f"))
    with pytest.raises(RemoteError, match="FileAlreadyExists"):
        run(k, client.create("/t/f"))


def test_append_then_read_roundtrip(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("a", 10), ("b", 20)]))
    run(k, client.append("/t/f", [("c", 30)]))
    data = run(k, client.read_all("/t/f"))
    assert [p for p, _n in data] == ["a", "b", "c"]


def test_append_replicates_to_all_replicas(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("x", 10)]))
    by_addr = {dn.addr: dn for dn in dns}
    for addr in replicas:
        stored = by_addr[addr].replica("/t/f")
        assert stored is not None and stored.length == 1


def test_durable_append_survives_datanode_crash(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("durable", 10)], durable=True))
    by_addr = {dn.addr: dn for dn in dns}
    by_addr[replicas[0]].crash()
    data = run(k, client.read_all("/t/f"))
    assert [p for p, _n in data] == ["durable"]


def test_non_durable_append_lost_on_crash_of_both_replicas(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("volatile", 10)], durable=False))
    by_addr = {dn.addr: dn for dn in dns}
    for addr in replicas:
        by_addr[addr].crash()
        # on_crash drops the unsynced suffix
        assert by_addr[addr].replica("/t/f").length == 0


def test_sync_makes_buffered_records_durable(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("v", 10)], durable=False))
    run(k, client.sync("/t/f"))
    by_addr = {dn.addr: dn for dn in dns}
    for addr in replicas:
        replica = by_addr[addr].replica("/t/f")
        assert replica.synced == 1


def test_read_fails_over_to_surviving_replica(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("x", 10)]))
    by_addr = {dn.addr: dn for dn in dns}
    by_addr[replicas[0]].crash()
    data = run(k, client.read_all("/t/f"))
    assert [p for p, _n in data] == ["x"]


def test_read_with_offset_and_count(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [(i, 8) for i in range(10)]))
    data = run(k, client.read("/t/f", start=3, count=4))
    assert [p for p, _n in data] == [3, 4, 5, 6]


def test_stat_reports_length(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("a", 5), ("b", 5)]))
    k.run(until=k.now + 0.01)  # report_length is a cast; let it land
    meta = run(k, client.stat("/t/f"))
    assert meta["length"] == 2


def test_delete_removes_everywhere(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("a", 5)]))
    run(k, client.delete("/t/f"))
    k.run(until=k.now + 0.01)
    by_addr = {dn.addr: dn for dn in dns}
    for addr in replicas:
        assert by_addr[addr].replica("/t/f") is None
    assert run(k, client.exists("/t/f")) is False


def test_list_dir(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    for name in ("/wal/s1.log", "/wal/s2.log", "/data/t1"):
        run(k, client.create(name))
    assert run(k, client.list_dir("/wal/")) == ["/wal/s1.log", "/wal/s2.log"]


def test_stat_unknown_path_is_remote_error(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    with pytest.raises(RemoteError, match="FileNotFound"):
        run(k, client.stat("/nope"))


def test_read_with_all_replicas_dead_raises(cluster):
    k, _net, _nn, dns, _host, client = cluster
    replicas = run(k, client.create("/t/f"))
    run(k, client.append("/t/f", [("x", 5)]))
    by_addr = {dn.addr: dn for dn in dns}
    for addr in replicas:
        by_addr[addr].crash()
    with pytest.raises(DfsError):
        run(k, client.read_all("/t/f"))


def test_append_pipeline_charges_latency(cluster):
    k, _net, _nn, _dns, _host, client = cluster
    run(k, client.create("/t/f"))
    before = k.now
    run(k, client.append("/t/f", [("x", 1000)], durable=True))
    elapsed = k.now - before
    # Two durable replica writes at ~4 ms each, serialised down the
    # pipeline, plus network hops: must be comfortably above one disk sync.
    assert elapsed > 0.006


def test_create_with_no_datanodes_fails():
    k = Kernel(seed=1)
    net = Network(k)
    NameNode(k, net)
    host = Node(k, net, "host")
    client = DfsClient(host, replication=2)
    with pytest.raises(RemoteError, match="NotEnoughReplicas"):
        k.run_until_complete(k.process(client.create("/t/f")))
