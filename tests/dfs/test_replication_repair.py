"""Tests for datanode-failure repair: re-replication and degraded pipelines."""

import pytest

from repro.dfs import DataNode, DfsClient, NameNode
from repro.sim import Kernel, Network, Node


@pytest.fixture
def repair_env():
    k = Kernel(seed=91)
    net = Network(k)
    nn = NameNode(k, net, repair_interval=0.5)
    dns = [DataNode(k, net, f"dn{i}") for i in range(3)]
    host = Node(k, net, "host")
    client = DfsClient(host, replication=2)
    k.run(until=0.01)
    return k, net, nn, dns, host, client


def run(k, gen):
    return k.run_until_complete(k.process(gen))


def test_closed_file_rereplicated_after_datanode_loss(repair_env):
    k, _net, nn, dns, _host, client = repair_env
    replicas = run(k, client.create("/f"))
    run(k, client.append("/f", [("a", 50), ("b", 50)]))
    run(k, client.close("/f"))

    by_addr = {dn.addr: dn for dn in dns}
    by_addr[replicas[0]].crash()
    k.run(until=k.now + 5.0)

    assert nn.repairs_completed == 1
    meta = run(k, client.stat("/f"))
    assert len(meta["replicas"]) == 2
    assert replicas[0] not in meta["replicas"]
    # The new replica actually holds the data, durably.
    new_dn = next(a for a in meta["replicas"] if a not in replicas)
    stored = by_addr[new_dn].replica("/f")
    assert stored is not None
    assert [r.payload for r in stored.durable_records()] == ["a", "b"]


def test_open_file_keeps_degraded_pipeline(repair_env):
    k, _net, nn, dns, _host, client = repair_env
    replicas = run(k, client.create("/wal"))
    run(k, client.append("/wal", [("r1", 20)]))
    by_addr = {dn.addr: dn for dn in dns}
    survivor = replicas[1]
    by_addr[replicas[0]].crash()
    k.run(until=k.now + 3.0)

    # Not cloned (the file is open), but appends keep flowing to the
    # surviving replica.
    run(k, client.append("/wal", [("r2", 20)]))
    data = run(k, client.read_all("/wal"))
    assert [p for p, _n in data] == ["r1", "r2"]
    # The dark replica stays listed: it still holds its synced prefix on
    # disk and serves it again if it comes back, so only closed files are
    # pruned (and cloned).  Writers exclude it from pipelines themselves.
    meta = run(k, client.stat("/wal"))
    assert set(meta["replicas"]) == set(replicas)
    assert survivor in meta["replicas"]


def test_reads_survive_during_repair_window(repair_env):
    k, _net, _nn, dns, _host, client = repair_env
    replicas = run(k, client.create("/g"))
    run(k, client.append("/g", [("x", 10)]))
    run(k, client.close("/g"))
    by_addr = {dn.addr: dn for dn in dns}
    by_addr[replicas[0]].crash()
    # Immediately, before the monitor has repaired anything:
    data = run(k, client.read_all("/g"))
    assert [p for p, _n in data] == ["x"]


def test_no_repair_possible_with_no_spare_datanodes():
    k = Kernel(seed=92)
    net = Network(k)
    nn = NameNode(k, net, repair_interval=0.5)
    dns = [DataNode(k, net, f"dn{i}") for i in range(2)]
    host = Node(k, net, "host")
    client = DfsClient(host, replication=2)
    k.run(until=0.01)
    replicas = k.run_until_complete(k.process(client.create("/f")))
    k.run_until_complete(k.process(client.append("/f", [("a", 10)])))
    k.run_until_complete(k.process(client.close("/f")))
    by_addr = {dn.addr: dn for dn in dns}
    by_addr[replicas[0]].crash()
    k.run(until=k.now + 3.0)
    assert nn.repairs_completed == 0  # nowhere to put a new replica
    # Data still readable from the survivor.
    data = k.run_until_complete(k.process(client.read_all("/f")))
    assert [p for p, _n in data] == ["a"]


def test_returning_datanode_reports_blocks_and_rejoins_replica_sets(repair_env):
    """Regression: pruning must not be forever.

    The monitor prunes an unreachable holder from a closed file's replica
    set and re-replicates -- but re-replication clones whatever the source
    has, damage included.  If the pruned node later returns, its block
    report must re-add it, or the only intact copy in the cluster is
    never consulted again (seen as whole-region data loss in the chaos
    sweep before datanodes sent block reports on revive).
    """
    k, _net, nn, dns, _host, client = repair_env
    replicas = run(k, client.create("/f"))
    run(k, client.append("/f", [("a", 30), ("b", 30)]))
    run(k, client.close("/f"))
    by_addr = {dn.addr: dn for dn in dns}

    # Take the first holder dark until the monitor prunes and re-clones.
    gone = by_addr[replicas[0]]
    gone.crash()
    k.run(until=k.now + 5.0)
    meta = run(k, client.stat("/f"))
    assert gone.addr not in meta["replicas"]

    # Damage record 0 on every *listed* copy: the only intact copy of
    # that record now lives on the pruned, dark node.
    for addr in meta["replicas"]:
        by_addr[addr].replica("/f").records[0].damage()

    gone.revive()
    k.run(until=k.now + 3.0)
    meta = run(k, client.stat("/f"))
    assert gone.addr in meta["replicas"]

    # Salvage reads the returned holder's copy: nothing is lost.
    records, report = run(k, client.read_all_salvaged("/f"))
    assert [p for p, _n in records] == ["a", "b"]
    assert not report.dropped
