"""Unit and integration tests for the coordination service."""

import pytest

from repro.config import ZkSettings
from repro.errors import RemoteError
from repro.sim import Kernel, Network, Node
from repro.zk import ZkClient, ZkService, ZkWatcherMixin


class WatcherNode(ZkWatcherMixin, Node):
    """A host node capable of receiving watch events."""


@pytest.fixture
def zk_env():
    k = Kernel(seed=2)
    net = Network(k)
    service = ZkService(k, net, settings=ZkSettings(session_timeout=2.0, tick_interval=0.25))
    host = WatcherNode(k, net, "host")
    client = ZkClient(host, ping_interval=0.5)
    return k, net, service, host, client


def run(k, gen):
    return k.run_until_complete(k.process(gen))


def test_create_get_roundtrip(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.create("/a", data={"x": 1}))
    node = run(k, client.get("/a"))
    assert node["data"] == {"x": 1}
    assert node["version"] == 0


def test_set_bumps_version(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.create("/a", data=1))
    v = run(k, client.set_data("/a", 2))
    assert v == 1
    assert run(k, client.get("/a"))["data"] == 2


def test_conditional_set_enforces_version(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.create("/a", data=1))
    run(k, client.set_data("/a", 2, version=0))
    with pytest.raises(RemoteError, match="BadVersion"):
        run(k, client.set_data("/a", 3, version=0))


def test_duplicate_create_fails(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.create("/a"))
    with pytest.raises(RemoteError, match="NodeExists"):
        run(k, client.create("/a"))


def test_get_missing_fails(zk_env):
    k, _net, _svc, _host, client = zk_env
    with pytest.raises(RemoteError, match="NoNode"):
        run(k, client.get("/missing"))


def test_sequential_create_appends_counter(zk_env):
    k, _net, _svc, _host, client = zk_env
    p1 = run(k, client.create("/q/item-", sequential=True))
    p2 = run(k, client.create("/q/item-", sequential=True))
    assert p1 == "/q/item-0000000000"
    assert p2 == "/q/item-0000000001"


def test_get_children(zk_env):
    k, _net, _svc, _host, client = zk_env
    for p in ("/servers/s1", "/servers/s2", "/servers/s2/sub", "/other"):
        run(k, client.create(p))
    children = run(k, client.get_children("/servers"))
    assert children == ["/servers/s1", "/servers/s2"]


def test_multi_get(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.create("/a", data=1))
    result = run(k, client.multi_get(["/a", "/missing"]))
    assert result[0]["data"] == 1
    assert result[1] is None


def test_ephemeral_removed_on_session_expiry(zk_env):
    k, _net, _svc, host, client = zk_env
    run(k, client.start_session())
    run(k, client.create("/live/host", ephemeral=True))
    assert run(k, client.exists("/live/host")) is True
    host.crash()  # ping loop dies with the host
    k.run(until=k.now + 5.0)
    # Query from a fresh node since the host is dead.
    probe = WatcherNode(k, _net, "probe")
    probe_client = ZkClient(probe)
    assert run(k, probe_client.exists("/live/host")) is False


def test_ephemeral_removed_on_clean_close(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.start_session())
    run(k, client.create("/live/x", ephemeral=True))
    run(k, client.close_session())
    assert run(k, client.exists("/live/x")) is False


def test_session_survives_with_pings(zk_env):
    k, _net, _svc, _host, client = zk_env
    run(k, client.start_session())
    run(k, client.create("/live/x", ephemeral=True))
    k.run(until=k.now + 10.0)  # many session_timeouts, but pings flow
    assert run(k, client.exists("/live/x")) is True


def test_data_watch_fires_on_change(zk_env):
    k, _net, _svc, _host, client = zk_env
    events = []
    client.on_watch("/w", lambda path, event: events.append((path, event, k.now)))
    run(k, client.create("/w", data=1))
    run(k, client.get("/w", watch=True))
    run(k, client.set_data("/w", 2))
    k.run(until=k.now + 0.1)
    assert events and events[0][1] == "changed"


def test_watch_is_one_shot(zk_env):
    k, _net, _svc, _host, client = zk_env
    events = []
    client.on_watch("/w", lambda path, event: events.append(event))
    run(k, client.create("/w", data=1))
    run(k, client.get("/w", watch=True))
    run(k, client.set_data("/w", 2))
    run(k, client.set_data("/w", 3))  # no re-arm: must not fire again
    k.run(until=k.now + 0.1)
    assert events == ["changed"]


def test_child_watch_fires_on_new_child(zk_env):
    k, _net, _svc, _host, client = zk_env
    events = []
    client.on_watch("/group", lambda path, event: events.append(event))
    run(k, client.create("/group"))
    run(k, client.get_children("/group", watch=True))
    run(k, client.create("/group/member1"))
    k.run(until=k.now + 0.1)
    assert events == ["child"]


def test_exists_watch_fires_on_delete(zk_env):
    k, _net, _svc, _host, client = zk_env
    events = []
    client.on_watch("/e", lambda path, event: events.append(event))
    run(k, client.create("/e"))
    run(k, client.exists("/e", watch=True))
    run(k, client.delete("/e"))
    k.run(until=k.now + 0.1)
    assert events == ["deleted"]


def test_ephemeral_create_without_session_fails(zk_env):
    k, _net, _svc, _host, client = zk_env
    with pytest.raises(Exception):
        run(k, client.create("/x", ephemeral=True))
