"""Property suite for the calendar event queue.

The contract: :class:`CalendarEventQueue` pops entries in exactly the same
``(time, priority, seq)`` order as the reference single heap, for any
schedule -- including the kernel's real access pattern of interleaved
pushes and pops, horizon pushbacks (``run(until)`` pops an entry past the
horizon and pushes the identical tuple back), and zero-delay triggers at
the current time.
"""

import random

import pytest

from repro.sim.equeue import (
    DEFAULT_BUCKET_WIDTH,
    CalendarEventQueue,
    HeapEventQueue,
    make_queue,
)
from repro.sim.kernel import Kernel


def _random_entries(rng, n, time_scale):
    seq = 0
    entries = []
    now = 0.0
    for _ in range(n):
        # Mostly forward in time, sometimes exactly "now" (zero-delay
        # triggers), with a mix of priorities and strictly increasing seq.
        seq += 1
        if rng.random() < 0.2:
            when = now
        else:
            when = now + rng.random() * time_scale
        priority = 0 if rng.random() < 0.3 else 1
        entries.append((when, priority, seq, object()))
    return entries


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("bucket_width", [0.0005, 0.005, 0.05])
def test_pop_order_matches_heap_bulk(seed, bucket_width):
    rng = random.Random(seed)
    entries = _random_entries(rng, 2000, time_scale=0.4)
    cal = CalendarEventQueue(bucket_width)
    heap = HeapEventQueue()
    for entry in entries:
        cal.push(entry)
        heap.push(entry)
    assert len(cal) == len(heap) == len(entries)
    for _ in range(len(entries)):
        assert cal.pop() == heap.pop()
    assert len(cal) == 0


@pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
def test_pop_order_matches_heap_interleaved(seed):
    """Kernel-realistic mix: pushes scheduling relative to the current
    simulated time, pops advancing it, and occasional pushbacks."""
    rng = random.Random(seed)
    cal = CalendarEventQueue(DEFAULT_BUCKET_WIDTH)
    heap = HeapEventQueue()
    now = 0.0
    seq = 0
    for _ in range(5000):
        op = rng.random()
        if op < 0.55 or len(heap) == 0:
            seq += 1
            delay = 0.0 if rng.random() < 0.25 else rng.random() * 0.08
            priority = 0 if rng.random() < 0.2 else 1
            entry = (now + delay, priority, seq, seq)
            cal.push(entry)
            heap.push(entry)
        elif op < 0.95:
            a = cal.pop()
            b = heap.pop()
            assert a == b
            now = a[0]
        else:
            # run(until)-style pushback: pop then reinsert the same tuple.
            a = cal.pop()
            b = heap.pop()
            assert a == b
            cal.push(a)
            heap.push(b)
    while len(heap):
        assert cal.pop() == heap.pop()


def test_peek_matches_pop():
    rng = random.Random(99)
    cal = CalendarEventQueue(0.01)
    for entry in _random_entries(rng, 500, time_scale=0.3):
        cal.push(entry)
    while True:
        head = cal.peek()
        if head is None:
            break
        assert cal.pop() == head


def test_empty_queue_behaviour():
    cal = CalendarEventQueue()
    assert cal.peek() is None
    assert len(cal) == 0
    with pytest.raises(IndexError):
        cal.pop()
    heap = HeapEventQueue()
    assert heap.peek() is None
    with pytest.raises(IndexError):
        heap.pop()


def test_bucket_width_must_be_positive():
    with pytest.raises(ValueError):
        CalendarEventQueue(0.0)
    with pytest.raises(ValueError):
        CalendarEventQueue(-1.0)


def test_make_queue_dispatch():
    assert isinstance(make_queue("calendar"), CalendarEventQueue)
    assert isinstance(make_queue("heap"), HeapEventQueue)
    assert make_queue("calendar", 0.25).bucket_width == 0.25
    with pytest.raises(ValueError):
        make_queue("btree")


def _run_scenario(queue_impl):
    """A small simulation with timers, priorities, and nested processes;
    returns the observable trace."""
    kernel = Kernel(seed=7, queue_impl=queue_impl)
    trace = []

    def worker(name, delays):
        for d in delays:
            yield kernel.timeout(d)
            trace.append((round(kernel.now, 9), name))

    def spawner():
        kernel.process(worker("a", [0.013, 0.001, 0.021]))
        kernel.process(worker("b", [0.0, 0.013, 0.05]))
        yield kernel.timeout(0.04)
        kernel.process(worker("c", [0.0, 0.002]))

    kernel.process(spawner())
    kernel.run(until=0.2)
    trace.append(("events", kernel.event_count))
    return trace


def test_kernel_trace_identical_across_queue_impls():
    assert _run_scenario("calendar") == _run_scenario("heap")

def _export_workload(tmp_path, queue_impl):
    """Run the CLI workload with one queue impl; return the export bytes."""
    from repro.cli import main

    metrics = tmp_path / f"metrics-{queue_impl}.json"
    history = tmp_path / f"history-{queue_impl}.json"
    rc = main([
        "workload", "--seed", "3", "--duration", "6", "--tps", "120",
        "--queue-impl", queue_impl,
        "--metrics-json", str(metrics),
        "--history-json", str(history),
    ])
    assert rc == 0
    return metrics.read_bytes(), history.read_bytes()


def test_same_seed_exports_byte_identical_across_queue_impls(tmp_path):
    """The queue swap is invisible: same seed, same wire-level history and
    metrics down to the byte."""
    cal_metrics, cal_history = _export_workload(tmp_path, "calendar")
    heap_metrics, heap_history = _export_workload(tmp_path, "heap")
    assert cal_metrics == heap_metrics
    assert cal_history == heap_history
