"""Unit tests for Resource and SimQueue."""

import pytest

from repro.errors import ScheduleError
from repro.sim import Interrupt, Kernel, Resource, SimQueue


def test_resource_limits_parallelism():
    k = Kernel()
    res = Resource(k, capacity=2)
    done = []

    def worker(k, res, name):
        yield from res.use(1.0)
        done.append((name, k.now))

    for name in "abcd":
        k.process(worker(k, res, name))
    k.run()
    # Two run in [0,1], the next two in [1,2].
    assert [t for _n, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_resource_fifo_grant_order():
    k = Kernel()
    res = Resource(k, capacity=1)
    order = []

    def worker(k, res, name):
        yield from res.use(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        k.process(worker(k, res, name))
    k.run()
    assert order == ["a", "b", "c"]


def test_release_without_request_raises():
    k = Kernel()
    res = Resource(k, capacity=1)
    with pytest.raises(ScheduleError):
        res.release()


def test_interrupted_waiter_does_not_leak_slot():
    k = Kernel()
    res = Resource(k, capacity=1)
    finished = []

    def holder(k, res):
        yield from res.use(5.0)
        finished.append("holder")

    def victim(k, res):
        try:
            yield from res.use(1.0)
            finished.append("victim")
        except Interrupt:
            finished.append("victim-interrupted")

    def late(k, res):
        yield k.timeout(6.0)
        yield from res.use(1.0)
        finished.append("late")

    k.process(holder(k, res))
    v = k.process(victim(k, res))

    def killer(k, v):
        yield k.timeout(2.0)
        v.interrupt("crash")

    k.process(killer(k, v))
    k.process(late(k, res))
    k.run()
    assert "victim-interrupted" in finished
    assert "late" in finished  # slot was not leaked
    assert res.in_use == 0


def test_capacity_must_be_positive():
    k = Kernel()
    with pytest.raises(ScheduleError):
        Resource(k, capacity=0)


def test_simqueue_get_blocks_until_put():
    k = Kernel()
    q = SimQueue(k)
    got = []

    def consumer(k, q):
        item = yield q.get()
        got.append((item, k.now))

    def producer(k, q):
        yield k.timeout(3.0)
        q.put("item")

    k.process(consumer(k, q))
    k.process(producer(k, q))
    k.run()
    assert got == [("item", 3.0)]


def test_simqueue_immediate_get_when_item_present():
    k = Kernel()
    q = SimQueue(k)
    q.put(1)
    q.put(2)
    got = []

    def consumer(k, q):
        got.append((yield q.get()))
        got.append((yield q.get()))

    k.process(consumer(k, q))
    k.run()
    assert got == [1, 2]


def test_simqueue_drain():
    k = Kernel()
    q = SimQueue(k)
    for i in range(5):
        q.put(i)
    assert q.drain() == [0, 1, 2, 3, 4]
    assert len(q) == 0


def test_simqueue_fifo_across_getters():
    k = Kernel()
    q = SimQueue(k)
    got = []

    def consumer(k, q, name):
        item = yield q.get()
        got.append((name, item))

    k.process(consumer(k, q, "g1"))
    k.process(consumer(k, q, "g2"))

    def producer(k, q):
        yield k.timeout(1)
        q.put("x")
        q.put("y")

    k.process(producer(k, q))
    k.run()
    assert got == [("g1", "x"), ("g2", "y")]
