"""Unit tests for the network fabric and the Node RPC layer."""

import pytest

from repro.errors import NodeDown, RemoteError, RpcTimeout
from repro.sim import Kernel, Network, Node


class EchoNode(Node):
    """Test node with a few representative handler shapes."""

    def rpc_echo(self, sender, text):
        return f"{text} from {sender}"

    def rpc_slow_echo(self, sender, text, delay):
        yield self.kernel.timeout(delay)
        return text

    def rpc_boom(self, sender):
        raise ValueError("kapow")

    def rpc_slow_boom(self, sender):
        yield self.kernel.timeout(0.1)
        raise ValueError("delayed kapow")


def make_pair():
    k = Kernel()
    net = Network(k)
    a = EchoNode(k, net, "a")
    b = EchoNode(k, net, "b")
    return k, net, a, b


def run_call(k, caller, *args, **kwargs):
    result = {}

    def proc(k):
        try:
            result["value"] = yield caller.call(*args, **kwargs)
        except Exception as exc:
            result["error"] = exc

    k.process(proc(k))
    k.run()
    return result


def test_basic_request_response():
    k, _net, a, _b = make_pair()
    result = run_call(k, a, "b", "echo", text="hi")
    assert result["value"] == "hi from a"


def test_generator_handler():
    k, _net, a, _b = make_pair()
    result = run_call(k, a, "b", "slow_echo", text="later", delay=2.0)
    assert result["value"] == "later"
    assert k.now >= 2.0


def test_sync_handler_exception_becomes_remote_error():
    k, _net, a, _b = make_pair()
    result = run_call(k, a, "b", "boom")
    assert isinstance(result["error"], RemoteError)
    assert "kapow" in str(result["error"])


def test_generator_handler_exception_becomes_remote_error():
    k, _net, a, _b = make_pair()
    result = run_call(k, a, "b", "slow_boom")
    assert isinstance(result["error"], RemoteError)


def test_unknown_method_is_remote_error():
    k, _net, a, _b = make_pair()
    result = run_call(k, a, "b", "nope")
    assert isinstance(result["error"], RemoteError)
    assert "no such method" in str(result["error"])


def test_call_to_dead_node_times_out():
    k, _net, a, b = make_pair()
    b.crash()
    result = run_call(k, a, "b", "echo", timeout=1.0, text="hi")
    assert isinstance(result["error"], RpcTimeout)


def test_call_from_dead_node_fails_fast():
    k, _net, a, _b = make_pair()
    a.crash()
    result = run_call(k, a, "b", "echo", text="hi")
    assert isinstance(result["error"], NodeDown)


def test_partition_drops_messages_then_heals():
    k, net, a, _b = make_pair()
    net.partition(["a"], ["b"])
    result = run_call(k, a, "b", "echo", timeout=0.5, text="hi")
    assert isinstance(result["error"], RpcTimeout)

    net.heal()
    result = run_call(k, a, "b", "echo", timeout=0.5, text="hi")
    assert result["value"] == "hi from a"


def test_crash_mid_handler_means_no_reply():
    k, _net, a, b = make_pair()

    def killer(k, b):
        yield k.timeout(0.05)
        b.crash()

    k.process(killer(k, b))
    result = run_call(k, a, "b", "slow_echo", timeout=1.0, text="x", delay=0.5)
    assert isinstance(result["error"], RpcTimeout)


def test_crash_interrupts_spawned_processes():
    k, _net, a, _b = make_pair()
    trace = []

    def loop(node):
        while True:
            yield node.sleep(1.0)
            trace.append(node.kernel.now)

    a.spawn(loop(a))

    def killer(k, a):
        yield k.timeout(3.5)
        a.crash()

    k.process(killer(k, a))
    k.run()
    assert trace == [1.0, 2.0, 3.0]


def test_cast_is_fire_and_forget():
    k, _net, a, b = make_pair()
    received = []

    def handler(sender, text):
        received.append((sender, text))

    b.rpc_note = handler  # type: ignore[attr-defined]
    a.cast("b", "note", text="hello")
    k.run()
    assert received == [("a", "hello")]


def test_late_reply_after_timeout_is_dropped():
    k, _net, a, _b = make_pair()
    # Timeout shorter than the handler delay: the reply arrives after the
    # caller gave up and must be discarded silently.
    result = run_call(k, a, "b", "slow_echo", timeout=0.1, text="x", delay=1.0)
    assert isinstance(result["error"], RpcTimeout)
    k.run()  # drain the late reply; must not blow up


def test_message_counters():
    k, net, a, _b = make_pair()
    run_call(k, a, "b", "echo", text="hi")
    assert net.messages_sent == 2  # request + response
    assert net.messages_dropped == 0


def test_reregistering_live_address_requires_replace():
    k = Kernel()
    net = Network(k)
    Node(k, net, "x")
    # Node.__init__ registers with replace=True, so constructing a second
    # node at the same address silently replaces -- the restart path.
    n2 = Node(k, net, "x")
    assert net.node("x") is n2
