"""Unit tests for the seeded RNG helpers."""

import pytest

from repro.sim.rng import SeededRng, zipfian_sampler


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(5), SeededRng(5)
        assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]

    def test_substreams_are_stable_and_named(self):
        a = SeededRng(5).substream("disk")
        b = SeededRng(5).substream("disk")
        c = SeededRng(5).substream("network")
        seq_a = [a.random() for _ in range(20)]
        assert seq_a == [b.random() for _ in range(20)]
        assert seq_a != [c.random() for _ in range(20)]

    def test_substream_independent_of_parent_consumption(self):
        parent1 = SeededRng(9)
        parent2 = SeededRng(9)
        parent2.random()  # consume from one parent only
        s1 = parent1.substream("x")
        s2 = parent2.substream("x")
        assert [s1.random() for _ in range(10)] == [s2.random() for _ in range(10)]

    def test_jittered_bounds(self):
        rng = SeededRng(7)
        for _ in range(200):
            v = rng.jittered(10.0, 0.2)
            assert 8.0 <= v <= 12.0
        assert rng.jittered(0.0) == 0.0
        assert rng.jittered(-1.0) == 0.0

    def test_exponential_mean(self):
        rng = SeededRng(11)
        samples = [rng.exponential(2.0) for _ in range(5000)]
        assert all(s >= 0 for s in samples)
        assert 1.8 < sum(samples) / len(samples) < 2.2
        assert rng.exponential(0.0) == 0.0


class TestZipfian:
    def test_domain_and_skew(self):
        rng = SeededRng(13)
        sample = zipfian_sampler(1000, 0.99, rng)
        draws = [sample() for _ in range(5000)]
        assert all(0 <= d < 1000 for d in draws)
        # Item 0 is the hottest by a wide margin.
        p0 = draws.count(0) / len(draws)
        assert p0 > 0.05

    def test_theta_zero_is_uniform(self):
        rng = SeededRng(17)
        sample = zipfian_sampler(100, 0.0, rng)
        draws = [sample() for _ in range(5000)]
        assert len(set(draws)) > 90  # near-complete coverage

    def test_tiny_domains(self):
        rng = SeededRng(19)
        one = zipfian_sampler(1, 0.99, rng)
        assert all(one() == 0 for _ in range(20))
        two = zipfian_sampler(2, 0.99, rng)
        seen = {two() for _ in range(200)}
        assert seen == {0, 1}

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            zipfian_sampler(0, 0.99, SeededRng(1))
