"""Unit tests for the disk model and the failure-schedule helper."""

import pytest

from repro.sim import Disk, Kernel, Network, Node
from repro.sim.failures import CrashNode, FailureSchedule, Partition


class TestDisk:
    def test_sync_write_takes_time(self):
        k = Kernel(seed=141)
        disk = Disk(k, "d", sync_latency=0.004, bytes_per_second=80e6)
        done = []

        def writer(k, disk):
            yield from disk.sync_write(8000)
            done.append(k.now)

        k.process(writer(k, disk))
        k.run()
        # Seek (~4 ms +-15%) plus transfer (0.1 ms).
        assert 0.003 < done[0] < 0.006
        assert disk.syncs == 1
        assert disk.bytes_written == 8000

    def test_writes_serialise_on_the_head(self):
        k = Kernel(seed=142)
        disk = Disk(k, "d", sync_latency=0.004)
        done = []

        def writer(k, disk, name):
            yield from disk.sync_write(100)
            done.append((name, k.now))

        for name in ("a", "b", "c"):
            k.process(writer(k, disk, name))
        k.run()
        times = [t for _n, t in done]
        assert times == sorted(times)
        # Three serialised writes take roughly three seek times.
        assert times[-1] > 0.009

    def test_queue_length_visible(self):
        k = Kernel(seed=143)
        disk = Disk(k, "d", sync_latency=0.01)

        def writer(k, disk):
            yield from disk.sync_write(10)

        for _ in range(3):
            k.process(writer(k, disk))
        k.run(until=0.001)
        assert disk.queue_length >= 1


class TestFailureSchedule:
    def make_env(self):
        k = Kernel(seed=144)
        net = Network(k)
        a = Node(k, net, "a")
        b = Node(k, net, "b")
        return k, net, a, b

    def test_crash_fires_at_time(self):
        k, net, a, _b = self.make_env()
        armed = FailureSchedule().crash(2.0, "a").inject(k, net)
        assert armed == ["t+2s crash a"]
        k.run(until=1.9)
        assert a.alive
        k.run(until=2.1)
        assert not a.alive

    def test_partition_with_heal(self):
        k, net, _a, _b = self.make_env()
        FailureSchedule().partition(1.0, ["a"], ["b"], heal_at=3.0).inject(k, net)
        k.run(until=1.5)
        assert not net.reachable("a", "b")
        k.run(until=3.5)
        assert net.reachable("a", "b")

    def test_partition_without_heal_persists(self):
        k, net, _a, _b = self.make_env()
        FailureSchedule().partition(1.0, ["a"], ["b"]).inject(k, net)
        k.run(until=10.0)
        assert not net.reachable("a", "b")

    def test_custom_action(self):
        k, net, _a, _b = self.make_env()
        fired = []
        armed = (
            FailureSchedule()
            .custom(0.5, lambda: fired.append(k.now), label="probe")
            .inject(k, net)
        )
        assert "probe" in armed[0]
        k.run(until=1.0)
        assert fired == [0.5]

    def test_crash_unknown_address_is_noop(self):
        k, net, a, _b = self.make_env()
        FailureSchedule().crash(0.5, "ghost").inject(k, net)
        k.run(until=1.0)  # must not raise
        assert a.alive

    def test_chaining_returns_self(self):
        schedule = FailureSchedule()
        assert schedule.crash(1, "x") is schedule
        assert schedule.partition(2, ["x"], ["y"]) is schedule
        assert schedule.custom(3, lambda: None) is schedule
        assert len(schedule.faults) == 3
