"""Unit tests for the network chaos layer (loss, duplication, spikes,
degradation) and the fabric counters that report on it."""

import pytest

from repro.errors import RpcTimeout
from repro.sim import Kernel, Network, Node


class CountingNode(Node):
    """Counts handler executions, to observe dedup and loss end-to-end."""

    def __init__(self, kernel, net, addr):
        super().__init__(kernel, net, addr)
        self.hits = 0

    def rpc_ping(self, sender):
        self.hits += 1
        return "pong"


def make_pair(seed=0):
    k = Kernel(seed=seed)
    net = Network(k)
    a = CountingNode(k, net, "a")
    b = CountingNode(k, net, "b")
    return k, net, a, b


def run_calls(k, caller, dst, method, n, timeout=1.0, **payload):
    """Issue ``n`` sequential calls; returns (successes, failures)."""
    tally = {"ok": 0, "err": 0}

    def proc():
        for _ in range(n):
            try:
                yield caller.call(dst, method, timeout=timeout, **payload)
                tally["ok"] += 1
            except Exception:
                tally["err"] += 1

    k.process(proc())
    k.run()
    return tally["ok"], tally["err"]


def run_until_value(k, gen):
    """Run ``gen`` as a process and return its return value."""
    out = {}

    def proc():
        out["value"] = yield from gen

    k.run_until_complete(k.process(proc()))
    return out["value"]


# ----------------------------------------------------------------------
# knob validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_probability": 1.0},
        {"loss_probability": -0.1},
        {"duplicate_probability": 1.5},
        {"delay_spike_probability": 1.0},
        {"delay_spike_factor": 0.5},
    ],
)
def test_configure_chaos_rejects_bad_knobs(kwargs):
    _k, net, _a, _b = make_pair()
    with pytest.raises(ValueError):
        net.configure_chaos(**kwargs)


def test_configure_chaos_none_leaves_knobs_alone():
    _k, net, _a, _b = make_pair()
    net.configure_chaos(loss_probability=0.3, duplicate_probability=0.2)
    net.configure_chaos(duplicate_probability=0.05)
    assert net.loss_probability == 0.3
    assert net.duplicate_probability == 0.05


def test_degrade_rejects_speedups():
    _k, net, _a, _b = make_pair()
    with pytest.raises(ValueError):
        net.degrade("b", 0.9)


# ----------------------------------------------------------------------
# loss / duplication / spikes
# ----------------------------------------------------------------------

def test_loss_drops_messages_and_counts_them():
    k, net, a, b = make_pair(seed=1)
    net.configure_chaos(loss_probability=0.9)
    ok, err = run_calls(k, a, "b", "ping", 30, timeout=0.05)
    assert net.messages_lost > 0
    assert b.hits < 30  # most requests vanished
    assert err > 0  # and their callers timed out
    assert ok + err == 30


def test_duplicates_execute_handlers_at_most_once():
    k, net, a, b = make_pair(seed=2)
    net.configure_chaos(duplicate_probability=0.9)
    ok, err = run_calls(k, a, "b", "ping", 20, timeout=1.0)
    assert ok == 20 and err == 0
    assert b.hits == 20  # transport dedup: one execution per request id
    assert net.messages_duplicated > 0
    assert net.duplicates_suppressed > 0


def test_delay_spikes_stretch_delivery():
    k, net, a, _b = make_pair(seed=3)
    net.configure_chaos(delay_spike_probability=0.9, delay_spike_factor=1000.0)
    ok, _err = run_calls(k, a, "b", "ping", 1, timeout=10.0)
    assert ok == 1
    assert net.delay_spikes >= 1
    assert k.now > 0.05  # vs ~0.0006 round trip on the polite fabric


def test_degradation_multiplies_latency_and_restore_undoes_it():
    k, net, a, _b = make_pair()

    def timed_ping():
        start = k.now
        yield a.call("b", "ping")  # no timeout: the clock stops at the reply
        return k.now - start

    baseline = run_until_value(k, timed_ping())
    net.degrade("b", 100.0)
    degraded = run_until_value(k, timed_ping())
    assert degraded > 50 * baseline
    net.restore("b")
    restored = run_until_value(k, timed_ping())
    assert restored < 2 * baseline


# ----------------------------------------------------------------------
# send-time reachability and counters
# ----------------------------------------------------------------------

def test_partition_drop_happens_at_send_time():
    k, net, a, b = make_pair()
    net.partition(["a"], ["b"])
    a.cast("b", "ping")
    net.heal()  # heals before any sampled delay could elapse
    k.run()
    assert b.hits == 0  # the message was dropped when injected, not later
    assert net.messages_dropped == 1


def test_chaos_counters_snapshot():
    k, net, a, _b = make_pair()
    run_calls(k, a, "b", "ping", 2)
    counters = net.metrics()["counters"]
    assert counters["messages_sent"] == 4  # 2 requests + 2 responses
    for key in (
        "messages_dropped", "messages_lost", "messages_duplicated",
        "delay_spikes", "rpc_retries", "duplicates_suppressed",
    ):
        assert counters[key] == 0


def test_chaos_draws_do_not_perturb_latency_jitter():
    # Same seed, chaos knobs on (but never firing at p=0 ... via separate
    # substream): delivery times must match the chaos-free run exactly.
    k1, _net1, a1, _b1 = make_pair(seed=9)
    run_calls(k1, a1, "b", "ping", 5)
    k2, net2, a2, _b2 = make_pair(seed=9)
    net2.configure_chaos(delay_spike_factor=50.0)  # knob set, prob still 0
    run_calls(k2, a2, "b", "ping", 5)
    assert k1.now == k2.now


# ----------------------------------------------------------------------
# request-id allocation
# ----------------------------------------------------------------------

def test_req_ids_are_per_kernel():
    k1, k2 = Kernel(seed=1), Kernel(seed=2)
    first = [k1.next_req_id() for _ in range(3)]
    # A fresh kernel restarts the sequence: ids are kernel-scoped, so two
    # simulations never interleave counters (determinism across runs).
    assert [k2.next_req_id() for _ in range(3)] == first
    assert len(set(first)) == 3
