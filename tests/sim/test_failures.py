"""Unit tests for declarative failure schedules and their validation."""

import pytest

from repro.sim import Kernel, Network, Node
from repro.sim.failures import CrashNode, Custom, FailureSchedule, Fault, Partition


def make_net():
    k = Kernel(seed=0)
    net = Network(k)
    nodes = {addr: Node(k, net, addr) for addr in ("a", "b", "c")}
    return k, net, nodes


class TestValidation:
    def test_negative_offset_rejected(self):
        k, net, _nodes = make_net()
        schedule = FailureSchedule().crash(-1.0, "a")
        with pytest.raises(ValueError):
            schedule.inject(k, net)

    def test_partition_heal_must_follow_cut(self):
        k, net, _nodes = make_net()
        schedule = FailureSchedule().partition(2.0, ["a"], ["b"], heal_at=2.0)
        with pytest.raises(ValueError):
            schedule.inject(k, net)

    def test_unknown_fault_type_rejected(self):
        k, net, _nodes = make_net()
        schedule = FailureSchedule()
        schedule.faults.append("definitely not a fault")
        with pytest.raises(TypeError):
            schedule.inject(k, net)

    def test_fault_union_covers_the_three_kinds(self):
        crash = CrashNode(at=1.0, addrs=("a",))
        cut = Partition(at=1.0, group_a=("a",), group_b=("b",), heal_at=2.0)
        custom = Custom(at=1.0, action=lambda: None)
        for fault in (crash, cut, custom):
            FailureSchedule._validate(fault)  # must not raise
        assert set(getattr(Fault, "__args__")) == {CrashNode, Partition, Custom}


class TestInjection:
    def test_crash_fires_at_offset(self):
        k, net, nodes = make_net()
        armed = FailureSchedule().crash(1.0, "a").inject(k, net)
        assert armed == ["t+1s crash a"]
        k.run(until=0.5)
        assert nodes["a"].alive
        k.run(until=1.5)
        assert not nodes["a"].alive

    def test_partition_window_cuts_then_heals(self):
        k, net, _nodes = make_net()
        FailureSchedule().partition(1.0, ["b"], ["c"], heal_at=2.0).inject(k, net)
        assert net.reachable("b", "c")
        k.run(until=1.5)
        assert not net.reachable("b", "c")
        k.run(until=2.5)
        assert net.reachable("b", "c")

    def test_custom_action_runs(self):
        k, net, _nodes = make_net()
        fired = []
        armed = FailureSchedule().custom(
            0.5, lambda: fired.append(True), label="flag"
        ).inject(k, net)
        assert armed == ["t+0.5s flag"]
        k.run(until=1.0)
        assert fired == [True]

    def test_offsets_are_relative_to_injection_time(self):
        k, net, nodes = make_net()
        k.run(until=5.0)
        FailureSchedule().crash(1.0, "b").inject(k, net)
        k.run(until=5.5)
        assert nodes["b"].alive
        k.run(until=6.5)
        assert not nodes["b"].alive
