"""Unit tests for the shared RPC retry/backoff policy."""

import pytest

from repro.errors import RemoteError, RpcTimeout
from repro.sim import DEFAULT_RPC_RETRY, UNBOUNDED_RETRY, Kernel, Network, Node, RetryPolicy


class FixedRng:
    """Stub jitter source: multiplies the mean and records the calls."""

    def __init__(self, factor=1.5):
        self.factor = factor
        self.calls = []

    def jittered(self, mean, fraction):
        self.calls.append((mean, fraction))
        return mean * self.factor


class TestBackoff:
    def test_exponential_sequence_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.8, jitter=0.2)
        assert [policy.backoff(n) for n in range(1, 7)] == [
            0.1, 0.2, 0.4, 0.8, 0.8, 0.8,
        ]

    def test_default_policy_sequence(self):
        assert [DEFAULT_RPC_RETRY.backoff(n) for n in range(1, 8)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0,
        ]

    def test_jitter_routes_through_rng(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.25)
        rng = FixedRng(factor=1.5)
        assert policy.backoff(2, rng) == pytest.approx(0.3)
        assert rng.calls == [(0.2, 0.25)]

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.0)
        rng = FixedRng()
        assert policy.backoff(1, rng) == 0.1
        assert rng.calls == []

    def test_attempt_numbering_is_one_based(self):
        with pytest.raises(ValueError):
            DEFAULT_RPC_RETRY.backoff(0)


class TestGivesUp:
    def test_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.gives_up(2, elapsed=0.0)
        assert policy.gives_up(3, elapsed=0.0)

    def test_deadline(self):
        policy = RetryPolicy(max_attempts=None, deadline=10.0)
        assert not policy.gives_up(50, elapsed=9.9)
        assert policy.gives_up(1, elapsed=10.0)

    def test_unbounded_policy_never_gives_up(self):
        assert not UNBOUNDED_RETRY.gives_up(10_000, elapsed=1e9)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"base_delay": 0.5, "max_delay": 0.1},
            {"jitter": 1.0},
            {"jitter": -0.01},
            {"max_attempts": 0},
            {"deadline": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# call_with_retry against a real (mis)behaving fabric
# ----------------------------------------------------------------------

class EchoNode(Node):
    def rpc_echo(self, sender, text):
        return f"{text} from {sender}"

    def rpc_boom(self, sender):
        raise ValueError("kapow")


def make_pair(seed=0):
    k = Kernel(seed=seed)
    net = Network(k)
    a = EchoNode(k, net, "a")
    b = EchoNode(k, net, "b")
    return k, net, a, b


def run_retry(k, caller, *args, **kwargs):
    result = {}

    def proc():
        try:
            result["value"] = yield from caller.call_with_retry(*args, **kwargs)
        except Exception as exc:
            result["error"] = exc

    k.process(proc())
    k.run()
    return result


def test_retries_until_partition_heals():
    k, net, a, _b = make_pair()
    net.partition(["a"], ["b"])
    heal = k.timeout(1.0)
    heal.callbacks.append(lambda _ev: net.heal())
    policy = RetryPolicy(base_delay=0.1, jitter=0.0, max_attempts=None)
    result = run_retry(k, a, "b", "echo", policy=policy, timeout=0.25, text="hi")
    assert result["value"] == "hi from a"
    assert k.now >= 1.0
    assert net.rpc_retries >= 2


def test_gives_up_after_max_attempts():
    k, net, a, _b = make_pair()
    net.partition(["a"], ["b"])  # never heals
    policy = RetryPolicy(base_delay=0.05, jitter=0.0, max_attempts=3)
    result = run_retry(k, a, "b", "echo", policy=policy, timeout=0.1, text="hi")
    assert isinstance(result["error"], RpcTimeout)
    assert net.rpc_retries == 2  # the give-up attempt is not a retry
    assert net.messages_sent == 3  # one request per attempt


def test_remote_errors_are_not_retried_by_default():
    k, net, a, _b = make_pair()
    result = run_retry(k, a, "b", "boom", timeout=1.0)
    assert isinstance(result["error"], RemoteError)
    assert net.rpc_retries == 0


def test_retry_on_widens_the_retried_exceptions():
    k, net, a, b = make_pair()

    flaky = {"left": 2}

    def rpc_flaky(sender):
        if flaky["left"] > 0:
            flaky["left"] -= 1
            raise ValueError("transient")
        return "ok"

    b.rpc_flaky = rpc_flaky
    policy = RetryPolicy(base_delay=0.05, jitter=0.0, max_attempts=5)
    result = run_retry(
        k, a, "b", "flaky", policy=policy, timeout=1.0,
        retry_on=(RpcTimeout, RemoteError),
    )
    assert result["value"] == "ok"
    assert net.rpc_retries == 2
