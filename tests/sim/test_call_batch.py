"""Batched RPC transport: ``Node.call_batch`` semantics.

One wire message carries N payload items; the receiver answers with one
response message fanned back out to per-item reply events.  Servers may
provide a batch-aware ``rpc_{method}_batch`` handler; otherwise the plain
per-item handler runs once per item with isolated failures.
"""

import pytest

from repro.errors import NodeDown, RemoteError, RpcTimeout
from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.sim.node import Node


class EchoServer(Node):
    """Per-item handler only: the generic fallback loop services batches."""

    def rpc_double(self, sender, value):
        if value < 0:
            raise ValueError(f"negative input {value}")
        return value * 2

    def rpc_slow_double(self, sender, value):
        yield self.kernel.timeout(0.001)
        return value * 2


class BatchServer(Node):
    """Defines a batch-aware handler that must win over the per-item one."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batch_calls = 0
        self.item_calls = 0

    def rpc_work(self, sender, value):
        self.item_calls += 1
        return ("item", value)

    def rpc_work_batch(self, sender, items):
        self.batch_calls += 1
        return [(True, ("batch", item["value"])) for item in items]


def _mk(cls):
    kernel = Kernel(seed=0)
    net = Network(kernel)
    client = Node(kernel, net, "client")
    server = cls(kernel, net, "server")
    return kernel, net, client, server


def _gather(kernel, client, events):
    out = []

    def collect():
        for event in events:
            try:
                out.append(("ok", (yield event)))
            except Exception as exc:  # noqa: BLE001 - recording outcomes
                out.append(("err", exc))

    kernel.run_until_complete(kernel.process(collect()))
    return out


def test_batch_per_item_replies_in_order():
    kernel, _net, client, _server = _mk(EchoServer)
    events = client.call_batch(
        "server", "double", [{"value": i} for i in range(5)], timeout=1.0
    )
    assert len(events) == 5
    results = _gather(kernel, client, events)
    assert results == [("ok", i * 2) for i in range(5)]


def test_batch_travels_as_one_message_each_way():
    kernel, net, client, _server = _mk(EchoServer)
    events = client.call_batch(
        "server", "double", [{"value": i} for i in range(8)], timeout=1.0
    )
    _gather(kernel, client, events)
    # One batch_request plus one batch_response -- not 8 of each.
    assert net.messages_sent == 2


def test_batch_generator_handler_items():
    kernel, _net, client, _server = _mk(EchoServer)
    events = client.call_batch(
        "server", "slow_double", [{"value": i} for i in range(3)], timeout=1.0
    )
    assert _gather(kernel, client, events) == [("ok", 0), ("ok", 2), ("ok", 4)]


def test_batch_item_failures_are_isolated():
    kernel, _net, client, _server = _mk(EchoServer)
    events = client.call_batch(
        "server", "double", [{"value": 1}, {"value": -1}, {"value": 3}],
        timeout=1.0,
    )
    results = _gather(kernel, client, events)
    assert results[0] == ("ok", 2)
    assert results[1][0] == "err" and isinstance(results[1][1], RemoteError)
    assert "negative input" in str(results[1][1])
    assert results[2] == ("ok", 6)


def test_batch_handler_preferred_over_item_handler():
    kernel, _net, client, server = _mk(BatchServer)
    events = client.call_batch(
        "server", "work", [{"value": 1}, {"value": 2}], timeout=1.0
    )
    results = _gather(kernel, client, events)
    assert results == [("ok", ("batch", 1)), ("ok", ("batch", 2))]
    assert server.batch_calls == 1
    assert server.item_calls == 0


def test_batch_unknown_method_fails_every_item():
    kernel, _net, client, _server = _mk(EchoServer)
    events = client.call_batch(
        "server", "nope", [{"value": 1}, {"value": 2}], timeout=1.0
    )
    results = _gather(kernel, client, events)
    assert all(kind == "err" for kind, _ in results)
    assert all(isinstance(exc, RemoteError) for _kind, exc in results)


def test_batch_timeout_fails_pending_items():
    kernel, _net, client, server = _mk(EchoServer)
    server.crash()
    events = client.call_batch(
        "server", "double", [{"value": 1}, {"value": 2}], timeout=0.05
    )
    results = _gather(kernel, client, events)
    assert all(kind == "err" for kind, _ in results)
    assert all(isinstance(exc, RpcTimeout) for _kind, exc in results)


def test_batch_from_dead_caller_fails_immediately():
    kernel, _net, client, _server = _mk(EchoServer)
    client.crash()
    events = client.call_batch("server", "double", [{"value": 1}])
    assert events[0].triggered
    results = _gather(kernel, client, events)
    assert isinstance(results[0][1], NodeDown)


def test_empty_batch_returns_no_events():
    _kernel, net, client, _server = _mk(EchoServer)
    assert client.call_batch("server", "double", []) == []
    assert net.messages_sent == 0


def test_batch_caller_crash_drops_pending_replies():
    kernel, _net, client, server = _mk(EchoServer)
    events = client.call_batch(
        "server", "slow_double", [{"value": 1}], timeout=1.0
    )

    def crasher():
        yield kernel.timeout(0.0001)
        client.crash()

    kernel.process(crasher())
    kernel.run(until=0.5)
    # The reply arrived after the crash cleared the pending table: the
    # event stays untriggered (the caller is gone anyway).
    assert not events[0].triggered
