"""Unit tests for the disk model's injectable media faults."""

import pytest

from repro.config import DiskFaultSettings
from repro.errors import DiskWriteError
from repro.sim import Disk, Kernel


def run(k, gen):
    return k.run_until_complete(k.process(gen))


def write(disk, nbytes=100):
    def gen():
        ok = yield from disk.sync_write(nbytes)
        return ok

    return gen()


class TestFaultKnobs:
    def test_defaults_are_fault_free(self):
        k = Kernel(seed=1)
        disk = Disk(k, "d")
        assert disk.faults.write_error_probability == 0.0
        assert disk.faults.lost_fsync_probability == 0.0
        assert disk.faults.corruption_probability == 0.0
        assert disk.faults.torn_write_probability == 0.0

    def test_configure_faults_overrides_selectively(self):
        k = Kernel(seed=1)
        disk = Disk(k, "d", faults=DiskFaultSettings(corruption_probability=0.5))
        disk.configure_faults(lost_fsync_probability=0.25)
        assert disk.faults.corruption_probability == 0.5
        assert disk.faults.lost_fsync_probability == 0.25

    def test_settings_object_is_copied(self):
        k = Kernel(seed=1)
        shared = DiskFaultSettings()
        disk = Disk(k, "d", faults=shared)
        disk.configure_faults(corruption_probability=0.9)
        assert shared.corruption_probability == 0.0


class TestWriteErrors:
    def test_transient_error_raises_and_counts(self):
        k = Kernel(seed=7)
        disk = Disk(k, "d", faults=DiskFaultSettings(write_error_probability=1.0))
        with pytest.raises(DiskWriteError) as err:
            run(k, write(disk))
        assert err.value.device == "d"
        assert disk.write_errors == 1
        # A failed write lands nothing and is not counted as a sync.
        assert disk.syncs == 0
        assert disk.bytes_written == 0

    def test_error_still_charges_latency(self):
        k = Kernel(seed=7)
        disk = Disk(
            k, "d", sync_latency=0.004,
            faults=DiskFaultSettings(write_error_probability=1.0),
        )
        with pytest.raises(DiskWriteError):
            run(k, write(disk))
        assert k.now > 0.002


class TestLostFsyncs:
    def test_lying_fsync_returns_false(self):
        k = Kernel(seed=9)
        disk = Disk(k, "d", faults=DiskFaultSettings(lost_fsync_probability=1.0))
        assert run(k, write(disk)) is False
        assert disk.lost_fsyncs == 1
        # The write itself is counted: the device accepted the data, it
        # just lied about the platter.
        assert disk.syncs == 1
        assert disk.bytes_written == 100

    def test_honest_fsync_returns_true(self):
        k = Kernel(seed=9)
        disk = Disk(k, "d")
        assert run(k, write(disk)) is True
        assert disk.lost_fsyncs == 0


class TestCorruptionAndTears:
    def test_corruption_draws_are_counted(self):
        k = Kernel(seed=11)
        disk = Disk(k, "d", faults=DiskFaultSettings(corruption_probability=1.0))
        assert disk.corrupts_record() is True
        assert disk.corruptions == 1
        disk.configure_faults(corruption_probability=0.0)
        assert disk.corrupts_record() is False
        assert disk.corruptions == 1

    def test_tears_on_crash_counted(self):
        k = Kernel(seed=11)
        disk = Disk(k, "d", faults=DiskFaultSettings(torn_write_probability=1.0))
        assert disk.tears_on_crash() is True
        assert disk.torn_writes == 1

    def test_no_tear_when_disabled(self):
        k = Kernel(seed=11)
        disk = Disk(k, "d")
        assert disk.tears_on_crash() is False
        assert disk.torn_writes == 0

    def test_crash_keep_count_bounds(self):
        k = Kernel(seed=13)
        disk = Disk(k, "d", faults=DiskFaultSettings(torn_write_probability=1.0))
        assert disk.crash_keep_count(1) == 0
        for tail in (2, 5, 50):
            keep = disk.crash_keep_count(tail)
            assert 0 <= keep < tail


class TestDeterminism:
    def test_fault_draws_use_a_dedicated_substream(self):
        """Enabling faults must not perturb the latency sequence."""

        def timings(faults):
            k = Kernel(seed=42)
            disk = Disk(k, "d", sync_latency=0.004, faults=faults)
            times = []

            def writer():
                for _ in range(10):
                    try:
                        yield from disk.sync_write(500)
                    except DiskWriteError:
                        pass
                    times.append(k.now)

            k.run_until_complete(k.process(writer()))
            return times

        clean = timings(None)
        # Corruption/tear draws never touch sync_write's behaviour, so
        # even aggressive rates leave the latency sequence untouched.
        noisy = timings(
            DiskFaultSettings(
                corruption_probability=0.9, torn_write_probability=0.9
            )
        )
        assert clean == noisy

    def test_stats_dict(self):
        k = Kernel(seed=5)
        disk = Disk(k, "d", faults=DiskFaultSettings(lost_fsync_probability=1.0))
        run(k, write(disk, 64))
        stats = disk.stats()
        assert stats == {
            "syncs": 1,
            "bytes_written": 64,
            "write_errors": 0,
            "lost_fsyncs": 1,
            "corruptions": 0,
            "torn_writes": 0,
        }
