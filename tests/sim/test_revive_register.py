"""Crash/revive semantics and address (re-)registration on the fabric."""

import pytest

from repro.errors import NodeDown, RpcTimeout, SimulationError
from repro.sim import Kernel, Network, Node


class EchoNode(Node):
    def rpc_echo(self, sender, text):
        return f"{text} from {sender}"


def make_pair(seed=0):
    k = Kernel(seed=seed)
    net = Network(k)
    a = EchoNode(k, net, "a")
    b = EchoNode(k, net, "b")
    return k, net, a, b


def run_call(k, caller, *args, **kwargs):
    result = {}

    def proc():
        try:
            result["value"] = yield caller.call(*args, **kwargs)
        except Exception as exc:
            result["error"] = exc

    k.process(proc())
    k.run()
    return result


def test_crash_during_flight_drops_request_and_times_out_caller():
    k, net, a, b = make_pair()
    result = {}

    def proc():
        ev = a.call("b", "echo", timeout=0.5, text="x")
        b.crash()  # request already in flight; dies before delivery
        try:
            result["value"] = yield ev
        except Exception as exc:
            result["error"] = exc

    k.process(proc())
    k.run()
    assert isinstance(result["error"], RpcTimeout)
    assert net.messages_dropped == 1  # delivery-time reachability check
    assert k.now >= 0.5


def test_call_from_dead_node_fails_fast():
    k, _net, a, _b = make_pair()
    a.crash()
    result = run_call(k, a, "b", "echo", timeout=1.0, text="x")
    assert isinstance(result["error"], NodeDown)


def test_send_to_dead_node_is_counted_dropped():
    k, net, a, b = make_pair()
    b.crash()
    a.cast("b", "echo", text="x")
    k.run()
    assert net.messages_dropped == 1


def test_revive_restores_service():
    k, net, a, b = make_pair()
    b.crash()
    assert not b.alive
    b.revive()
    assert b.alive
    assert net.node("b") is b
    result = run_call(k, a, "b", "echo", timeout=1.0, text="hi")
    assert result["value"] == "hi from a"


def test_double_revive_is_a_noop():
    _k, net, _a, b = make_pair()
    b.crash()
    b.revive()
    b.revive()
    assert b.alive and net.node("b") is b


def test_revive_while_alive_is_a_noop():
    _k, net, _a, b = make_pair()
    b.revive()
    assert b.alive and net.node("b") is b


def test_reregistration_conflicts_only_with_a_live_incumbent():
    k = Kernel()
    net = Network(k)
    b1 = EchoNode(k, net, "b")
    b2 = EchoNode(k, net, "b")  # Node.__init__ registers with replace=True
    assert net.node("b") is b2
    with pytest.raises(SimulationError):
        net.register(b1)  # b2 is alive: explicit re-register must refuse
    b2.crash()
    net.register(b1)  # dead incumbent: the address is free to reuse
    assert net.node("b") is b1


def test_crash_clears_duplicate_suppression_state():
    # Volatile transport state does not survive a crash: a request id seen
    # before the crash executes again afterwards (fresh incarnation).
    k, net, a, b = make_pair()
    hits = []

    def rpc_mark(sender):
        hits.append(sender)
        return "ok"

    b.rpc_mark = rpc_mark
    run_call(k, a, "b", "mark", timeout=1.0)
    assert b._seen_requests
    b.crash()
    assert not b._seen_requests
    b.revive()
    run_call(k, a, "b", "mark", timeout=1.0)
    assert hits == ["a", "a"]
    assert net.duplicates_suppressed == 0
