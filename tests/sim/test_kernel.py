"""Unit tests for the discrete-event kernel, events, and processes."""

import pytest

from repro.errors import ScheduleError, SimulationError
from repro.sim import Interrupt, Kernel


def test_timeout_advances_clock():
    k = Kernel()
    fired = []

    def proc(k):
        yield k.timeout(1.5)
        fired.append(k.now)
        yield k.timeout(0.5)
        fired.append(k.now)

    k.process(proc(k))
    k.run()
    assert fired == [1.5, 2.0]


def test_run_until_stops_at_time():
    k = Kernel()
    fired = []

    def proc(k):
        for _ in range(10):
            yield k.timeout(1.0)
            fired.append(k.now)

    k.process(proc(k))
    k.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    assert k.now == 3.5


def test_process_return_value():
    k = Kernel()

    def proc(k):
        yield k.timeout(1)
        return 42

    p = k.process(proc(k))
    assert k.run_until_complete(p) == 42


def test_event_succeed_wakes_waiter_with_value():
    k = Kernel()
    ev = k.event()
    got = []

    def waiter(k, ev):
        value = yield ev
        got.append(value)

    def firer(k, ev):
        yield k.timeout(2)
        ev.succeed("hello")

    k.process(waiter(k, ev))
    k.process(firer(k, ev))
    k.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    k = Kernel()
    ev = k.event()
    caught = []

    def waiter(k, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(k, ev):
        yield k.timeout(1)
        ev.fail(ValueError("boom"))

    k.process(waiter(k, ev))
    k.process(firer(k, ev))
    k.run()
    assert caught == ["boom"]


def test_event_cannot_trigger_twice():
    k = Kernel()
    ev = k.event()
    ev.succeed(1)
    with pytest.raises(ScheduleError):
        ev.succeed(2)


def test_all_of_waits_for_every_child():
    k = Kernel()
    done = []

    def proc(k):
        values = yield k.all_of([k.timeout(1, "a"), k.timeout(3, "b"), k.timeout(2, "c")])
        done.append((k.now, values))

    k.process(proc(k))
    k.run()
    assert done == [(3.0, ["a", "b", "c"])]


def test_any_of_fires_on_first_child():
    k = Kernel()
    done = []

    def proc(k):
        slow = k.timeout(5, "slow")
        fast = k.timeout(1, "fast")
        first = yield k.any_of([slow, fast])
        done.append((k.now, first.value))

    k.process(proc(k))
    k.run()
    assert done[0] == (1.0, "fast")


def test_interrupt_raises_at_wait_point():
    k = Kernel()
    trace = []

    def victim(k):
        try:
            yield k.timeout(100)
            trace.append("not reached")
        except Interrupt as intr:
            trace.append(("interrupted", intr.cause, k.now))

    def killer(k, proc):
        yield k.timeout(2)
        proc.interrupt("crash")

    victim_proc = k.process(victim(k))
    k.process(killer(k, victim_proc))
    k.run()
    assert trace == [("interrupted", "crash", 2.0)]


def test_interrupt_finished_process_is_noop():
    k = Kernel()

    def quick(k):
        yield k.timeout(1)

    p = k.process(quick(k))
    k.run()
    p.interrupt("too late")  # must not raise
    k.run()


def test_unhandled_process_exception_escalates_in_strict_mode():
    k = Kernel(strict=True)

    def bad(k):
        yield k.timeout(1)
        raise RuntimeError("bug in process")

    k.process(bad(k))
    with pytest.raises(SimulationError):
        k.run()


def test_handled_process_exception_does_not_escalate():
    k = Kernel(strict=True)
    caught = []

    def bad(k):
        yield k.timeout(1)
        raise RuntimeError("bug")

    def waiter(k, p):
        try:
            yield p
        except RuntimeError as exc:
            caught.append(str(exc))

    p = k.process(bad(k))
    k.process(waiter(k, p))
    k.run()
    assert caught == ["bug"]


def test_non_strict_mode_swallows_process_failures():
    k = Kernel(strict=False)

    def bad(k):
        yield k.timeout(1)
        raise RuntimeError("bug")

    k.process(bad(k))
    k.run()
    assert len(k.dead_processes) == 1


def test_yielding_non_event_fails_the_process():
    k = Kernel(strict=True)

    def bad(k):
        yield 42

    k.process(bad(k))
    with pytest.raises(SimulationError):
        k.run()


def test_same_seed_same_trace():
    def run(seed):
        k = Kernel(seed=seed)
        trace = []

        def proc(k, name):
            for _ in range(20):
                yield k.timeout(k.rng.uniform(0, 1))
                trace.append((name, round(k.now, 9)))

        for name in ("a", "b", "c"):
            k.process(proc(k, name))
        k.run()
        return trace

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_negative_timeout_rejected():
    k = Kernel()
    with pytest.raises(ScheduleError):
        k.timeout(-1)


def test_run_until_complete_detects_deadlock():
    k = Kernel()

    def stuck(k):
        yield k.event()  # never triggered

    p = k.process(stuck(k))
    with pytest.raises(SimulationError, match="deadlock"):
        k.run_until_complete(p)


def test_immediate_events_processed_in_fifo_order():
    k = Kernel()
    order = []

    def proc(k, name):
        yield k.timeout(0)
        order.append(name)

    for name in ("first", "second", "third"):
        k.process(proc(k, name))
    k.run()
    assert order == ["first", "second", "third"]
