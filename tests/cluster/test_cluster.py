"""Tests for the cluster builder: preload, cache sizing/warming, clients,
and end-to-end determinism."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE, paper_setup, small_setup
from repro.kvstore.keys import row_key
from repro.workload import WorkloadDriver


def make(seed=71, n_rows=4000, n_regions=4):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = n_rows
    config.kv.n_regions = n_regions
    return SimCluster(config).start()


def test_start_brings_everything_online():
    cluster = make()
    status = cluster.cluster_status()
    assert len(status["assignments"]) == 4
    assert all(status["online"].values())
    assert sorted(status["live_servers"]) == ["rs0", "rs1"]


def test_preload_covers_every_row():
    cluster = make()
    assert cluster.preload() == 4000
    handle = cluster.add_client()

    def read(i):
        ctx = yield from handle.txn.begin()
        return (yield from handle.txn.read(ctx, TABLE, row_key(i)))

    for i in (0, 1, 1999, 2000, 3999):
        assert cluster.run(read(i)) == f"init-{i}"


def test_warm_caches_fills_hosted_blocks():
    cluster = make()
    cluster.preload()
    cluster.warm_caches()
    for rs in cluster.servers:
        expected = sum(s.n_blocks for r in rs.regions.values() for s in r.sstables)
        assert len(rs.cache) == expected
        assert expected > 0


def test_default_cache_fits_whole_dataset_per_server():
    cluster = make()
    total_blocks = sum(
        s.n_blocks
        for rs in cluster.servers
        for r in rs.regions.values()
        for s in r.sstables
    ) or 1
    cluster.preload()
    total_blocks = sum(
        s.n_blocks
        for rs in cluster.servers
        for r in rs.regions.values()
        for s in r.sstables
    )
    for rs in cluster.servers:
        assert rs.cache.capacity >= total_blocks


def test_add_client_wires_tracker_when_recovery_enabled():
    cluster = make()
    handle = cluster.add_client("c1")
    assert handle.agent is not None
    assert handle.txn.tracker is handle.agent
    assert handle.txn.durability == "tm_log"


def test_add_client_without_recovery_uses_store_sync_when_wal_sync():
    config = ClusterConfig(seed=72)
    config.workload.n_rows = 1000
    config.kv.wal_sync_mode = "sync"
    config.recovery.enabled = False
    cluster = SimCluster(config).start()
    handle = cluster.add_client()
    assert handle.agent is None
    assert handle.txn.durability == "store_sync"


def test_same_seed_same_workload_results():
    def run(seed):
        config = ClusterConfig(seed=seed)
        config.workload.n_rows = 3000
        config.workload.n_clients = 6
        cluster = SimCluster(config).start()
        cluster.preload()
        cluster.warm_caches()
        result = WorkloadDriver(cluster).run(duration=5.0, target_tps=60.0)
        return (
            result.committed,
            result.aborted,
            round(result.latency.mean, 12),
            cluster.kernel.event_count,
        )

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_paper_and_small_setups():
    paper = paper_setup()
    assert paper.workload.n_rows == 500_000
    assert paper.workload.n_clients == 50
    assert paper.kv.n_region_servers == 2
    small = small_setup()
    assert small.workload.n_rows < 50_000


def test_restart_recovery_manager_requires_recovery():
    config = ClusterConfig(seed=73)
    config.workload.n_rows = 1000
    config.recovery.enabled = False
    cluster = SimCluster(config).start()
    with pytest.raises(RuntimeError):
        cluster.restart_recovery_manager()


def test_crash_server_kills_colocated_datanode():
    cluster = make()
    cluster.crash_server(0)
    assert not cluster.servers[0].alive
    assert not cluster.datanodes[0].alive
    assert cluster.servers[1].alive
