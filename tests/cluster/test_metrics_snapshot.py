"""Integration tests for the unified metrics snapshot and status RPCs."""

import json

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key
from repro.workload import WorkloadDriver


def make(seed=81, n_rows=2000, n_regions=4):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = n_rows
    config.workload.n_clients = 8
    config.kv.n_regions = n_regions
    return SimCluster(config).start()


def run_some_txns(cluster, n=10):
    handle = cluster.add_client("app")

    def one(i):
        def body(ctx):
            for j in range(3):
                handle.txn.write(ctx, TABLE, row_key(i * 3 + j), f"v{i}")
            yield from ()

        return handle.txn.transaction(body)

    for i in range(n):
        cluster.run(one(i))
    cluster.run_until(cluster.kernel.now + 2.0)
    return handle


def test_metrics_snapshot_folds_every_component():
    cluster = make()
    run_some_txns(cluster)
    snap = cluster.metrics_snapshot()
    keys = set(snap["components"])
    assert "network:net" in keys
    assert "tm:tm" in keys
    assert "rm:rm" in keys
    assert "master:master" in keys
    assert "regionserver:rs0" in keys and "regionserver:rs1" in keys
    assert "txn_client:app" in keys
    assert any(k.startswith("kv_client:") for k in keys)
    tm = snap["components"]["tm:tm"]
    assert tm["counters"]["commits"] == 10
    assert snap["components"]["txn_client:app"]["counters"]["committed"] == 10


def test_commit_breakdown_stages_reconcile_within_5_percent():
    cluster = make()
    run_some_txns(cluster, n=20)
    breakdown = cluster.metrics_snapshot()["commit_breakdown"]
    e2e = breakdown["end_to_end"]
    assert e2e["count"] == 20
    for stage in ("commit.certify", "commit.log_append", "commit.reply"):
        assert breakdown["stages"][stage]["count"] == 20
    # Per-transaction stage durations sum exactly to the commit RPC; the
    # p50 sum may drift slightly from the e2e p50 (percentile skew only).
    assert abs(breakdown["p50_ratio"] - 1.0) <= 0.05
    # The pipeline below the commit point is present too.
    assert breakdown["pipeline"]["flush.writeset"]["count"] > 0
    assert breakdown["pipeline"]["log.group_sync"]["count"] > 0


def test_per_txn_stage_sum_matches_commit_latency_exactly():
    from repro.metrics import tracer_for

    cluster = make()
    handle = run_some_txns(cluster, n=5)
    tracer = tracer_for(cluster.kernel)
    rpcs = tracer.spans(stage="commit.rpc")
    assert len(rpcs) == 5
    for span in rpcs:
        parts = tracer.sum_durations(
            span.txn, ("commit.certify", "commit.log_append", "commit.reply")
        )
        assert abs(parts - span.duration) < 1e-9


def test_same_seed_snapshots_are_byte_identical():
    def snapshot_bytes():
        cluster = make(seed=91)
        driver = WorkloadDriver(cluster)
        driver.run(duration=3.0, target_tps=50.0, warmup=0.5)
        return json.dumps(cluster.metrics_snapshot(), sort_keys=True)

    assert snapshot_bytes() == snapshot_bytes()


def test_periodic_scraper_accumulates_history():
    cluster = make()
    assert cluster.metrics_history == []
    run_some_txns(cluster, n=3)
    cluster.run_until(cluster.kernel.now + 5.0)
    assert len(cluster.metrics_history) >= 5
    assert all("components" in s for s in cluster.metrics_history)
    # history is bounded
    cluster.max_metrics_history = 4
    cluster.run_until(cluster.kernel.now + 10.0)
    assert len(cluster.metrics_history) == 4


def test_status_rpcs_share_the_envelope_shape():
    cluster = make()
    run_some_txns(cluster, n=2)
    for addr, component in (
        ("tm", "tm"),
        ("rm", "rm"),
        ("master", "master"),
        ("rs0", "regionserver"),
    ):
        env = cluster.status(addr)
        assert env["component"] == component
        assert env["addr"] == addr
        assert "counters" in env["metrics"]
    assert cluster.status("tm")["metrics"]["counters"]["commits"] == 2


def test_flat_stats_surfaces_still_work():
    cluster = make()
    run_some_txns(cluster, n=2)
    tm = cluster.status("tm")
    assert tm["metrics"]["counters"]["commits"] == 2
    assert "log_length" in tm
    net = cluster.net_stats()
    assert net["messages_sent"] > 0
    rm = cluster.rm_status()
    assert "global_tf" in rm
    status = cluster.cluster_status()
    assert "assignments" in status
    storage = cluster.storage_stats()
    assert "disks" in storage


def test_crashed_flush_shows_up_as_truncated_spans():
    cluster = make()
    handle = cluster.add_client("doomed")

    def one():
        def body(ctx):
            for j in range(4):
                handle.txn.write(ctx, TABLE, row_key(j), "x")
            yield from ()

        return handle.txn.transaction(body)

    cluster.run(one())
    # Crash the client immediately: a commit's async flush may be cut off
    # mid-flight.  Run a fresh commit and kill the machine right after the
    # commit returns, before the flush has a chance to finish.
    def commit_only():
        ctx = yield from handle.txn.begin()
        for j in range(4):
            handle.txn.write(ctx, TABLE, row_key(100 + j), "y")
        yield from handle.txn.commit(ctx)
        return ctx

    cluster.run(commit_only())
    cluster.crash_client(0)
    cluster.run_until(cluster.kernel.now + 10.0)
    spans = cluster.metrics_snapshot()["spans"]
    flush = spans.get("flush.writeset", {})
    # The first txn's flush finished; the second was severed by the crash
    # (it stays open forever -- never recorded as a latency sample).
    assert flush["count"] >= 1
    from repro.metrics import tracer_for

    open_stages = {s.stage for s in tracer_for(cluster.kernel).open_spans()}
    assert "flush.writeset" in open_stages
