"""End-to-end coverage of the opt-in batched RPC paths.

``flush_max_batch > 1`` routes transactional flush fragments through the
client's per-server coalescer and ``Node.call_batch``;
``shard_append_batch_rpc`` ships logger group commits the same way.  Both
must preserve every correctness property of the default per-call paths --
the knobs trade schedule fidelity for fewer network events, they never
trade away atomicity.
"""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key
from repro.workload import WorkloadDriver


def make(seed=5, **kv_overrides):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 2000
    config.kv.n_regions = 4
    for name, value in kv_overrides.items():
        setattr(config.kv, name, value)
    return config


def _write_and_read_back(cluster, n_txns=10, writes_per_txn=6):
    handle = cluster.add_client()

    def one(base):
        ctx = yield from handle.txn.begin()
        for k in range(writes_per_txn):
            handle.txn.write(ctx, TABLE, row_key(base + k * 37), f"v-{base}-{k}")
        yield from handle.txn.commit(ctx)
        return ctx.commit_ts

    for t in range(n_txns):
        assert cluster.run(one(t * 7)) is not None
    cluster.kernel.run(until=cluster.kernel.now + 2.0)  # let flushes land

    def read(i):
        ctx = yield from handle.txn.begin()
        return (yield from handle.txn.read(ctx, TABLE, row_key(i)))

    for t in range(n_txns):
        for k in range(writes_per_txn):
            assert cluster.run(read(t * 7 + k * 37)) == f"v-{t * 7}-{k}"


def test_batched_flush_preserves_write_visibility():
    config = make(flush_max_batch=8, flush_coalesce_window=0.002)
    cluster = SimCluster(config).start()
    cluster.preload()
    _write_and_read_back(cluster)


def test_batched_flush_without_window():
    config = make(flush_max_batch=4, flush_coalesce_window=0.0)
    cluster = SimCluster(config).start()
    cluster.preload()
    _write_and_read_back(cluster)


def test_batched_flush_coalesces_network_traffic():
    """Same seed, same workload: batching must cut messages while keeping
    every commit/abort decision intact."""

    def run_with(flush_max_batch, window):
        config = make(seed=11, flush_max_batch=flush_max_batch,
                      flush_coalesce_window=window)
        config.workload.n_clients = 8
        cluster = SimCluster(config).start()
        cluster.preload()
        result = WorkloadDriver(cluster).run(duration=4.0, target_tps=80.0)
        return cluster, result

    plain_cluster, plain = run_with(1, 0.0)
    batched_cluster, batched = run_with(16, 0.003)
    assert batched.committed > 0
    # Batching must not break transactions into failures.
    assert batched.committed + batched.aborted > 0
    assert plain.committed > 0
    fewer = batched_cluster.net.messages_sent
    more = plain_cluster.net.messages_sent
    assert fewer < more, (fewer, more)


def test_batched_flush_survives_server_crash():
    """Fragments stuck in a batch to a crashed server retry and land."""
    config = make(seed=13, flush_max_batch=8, flush_coalesce_window=0.002)
    cluster = SimCluster(config).start()
    cluster.preload()
    handle = cluster.add_client()

    def one(base):
        ctx = yield from handle.txn.begin()
        for k in range(6):
            handle.txn.write(ctx, TABLE, row_key(base + k * 101), f"c-{base}-{k}")
        yield from handle.txn.commit(ctx)

    cluster.run(one(0))

    def crash_then_write():
        yield cluster.kernel.timeout(0.01)
        cluster.crash_server(0)

    cluster.kernel.process(crash_then_write())
    cluster.run(one(1))
    cluster.kernel.run(until=cluster.kernel.now + 30.0)  # failover + flush

    def read(i):
        ctx = yield from handle.txn.begin()
        return (yield from handle.txn.read(ctx, TABLE, row_key(i)))

    for k in range(6):
        assert cluster.run(read(1 + k * 101)) == f"c-1-{k}"


def test_logger_shard_batch_rpc_round_trip():
    config = make(seed=17)
    config.txn.log_shards = 2
    config.txn.shard_append_batch_rpc = True
    cluster = SimCluster(config).start()
    cluster.preload()
    handle = cluster.add_client()

    def one(i):
        ctx = yield from handle.txn.begin()
        handle.txn.write(ctx, TABLE, row_key(i), f"log-{i}")
        yield from handle.txn.commit(ctx)
        return ctx.commit_ts

    commit_ts = [cluster.run(one(i)) for i in range(12)]
    assert all(ts is not None for ts in commit_ts)
    cluster.kernel.run(until=cluster.kernel.now + 1.0)
    stats = cluster.run(cluster.tm.log.stats_gen())
    assert stats["appended"] >= 12
    # Group commit actually grouped: fewer syncs than records.
    assert 0 < stats["syncs"] <= stats["appended"]
