"""Integration tests for the workload driver."""

import pytest

from repro import ClusterConfig, SimCluster
from repro.workload import WorkloadDriver


def make_cluster(seed=61, n_clients=10, n_rows=5000):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = n_rows
    config.workload.n_clients = n_clients
    config.kv.n_regions = 4
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


def test_throttled_run_hits_target():
    cluster = make_cluster()
    result = WorkloadDriver(cluster).run(duration=10.0, target_tps=100.0, warmup=1.0)
    assert 90.0 < result.achieved_tps < 110.0
    assert result.failed == 0
    assert result.latency.count == result.committed
    assert result.latency.mean > 0


def test_closed_loop_exceeds_throttled(
):
    cluster = make_cluster(seed=62)
    throttled = WorkloadDriver(cluster).run(duration=5.0, target_tps=50.0)
    cluster2 = make_cluster(seed=63)
    closed = WorkloadDriver(cluster2).run(duration=5.0, target_tps=None)
    assert closed.achieved_tps > throttled.achieved_tps * 2


def test_timeseries_cover_run():
    cluster = make_cluster(seed=64)
    result = WorkloadDriver(cluster).run(duration=8.0, target_tps=80.0)
    rates = result.throughput_ts.rate_series()
    assert len(rates) >= 7
    assert sum(v for _t, v in rates) > 0


def test_warmup_excluded_from_summary():
    cluster = make_cluster(seed=65)
    result = WorkloadDriver(cluster).run(duration=6.0, target_tps=100.0, warmup=3.0)
    # The summary covers only the post-warmup half of the run.
    assert result.committed < 100.0 * 6.0 * 0.75
    assert result.throughput_ts.total_count() > result.committed


def test_multiple_client_machines():
    cluster = make_cluster(seed=66)
    driver = WorkloadDriver(cluster, n_client_nodes=2)
    result = driver.run(duration=5.0, target_tps=60.0)
    assert len(driver.handles) == 2
    assert result.committed > 100


def test_summary_shape():
    cluster = make_cluster(seed=67)
    result = WorkloadDriver(cluster).run(duration=3.0, target_tps=50.0)
    summary = result.summary()
    assert set(summary) == {
        "tps", "committed", "aborted", "failed", "mean_ms", "p95_ms", "p99_ms"
    }


def test_driver_requires_a_client_machine():
    cluster = make_cluster(seed=68)
    with pytest.raises(Exception):
        WorkloadDriver(cluster, n_client_nodes=0)
