"""Tests for the YCSB core workload mixes."""

import pytest

from repro import ClusterConfig, SimCluster
from repro.config import WorkloadSettings
from repro.errors import ReproError
from repro.kvstore.keys import row_key
from repro.sim.rng import SeededRng
from repro.workload import WORKLOADS, KeySpace, WorkloadDriver, YcsbGenerator, YcsbMix
from repro.workload.ycsb import INSERT, READ, RMW, SCAN, UPDATE


def settings(**kw):
    base = dict(n_rows=1000, ops_per_txn=10)
    base.update(kw)
    return WorkloadSettings(**base)


def op_histogram(mix_name, n_txns=300, seed=10):
    gen = YcsbGenerator(WORKLOADS[mix_name], settings(), SeededRng(seed))
    counts = {}
    for _ in range(n_txns):
        for kind, _row, _len in gen.next_txn():
            counts[kind] = counts.get(kind, 0) + 1
    total = sum(counts.values())
    return {k: v / total for k, v in counts.items()}, gen


class TestMixProportions:
    def test_workload_a_is_half_and_half(self):
        hist, _gen = op_histogram("A")
        assert 0.45 < hist[READ] < 0.55
        assert 0.45 < hist[UPDATE] < 0.55

    def test_workload_b_is_read_heavy(self):
        hist, _gen = op_histogram("B")
        assert hist[READ] > 0.9
        assert 0.0 < hist.get(UPDATE, 0) < 0.1

    def test_workload_c_is_read_only(self):
        hist, _gen = op_histogram("C")
        assert hist == {READ: 1.0}

    def test_workload_d_inserts_extend_key_space(self):
        hist, gen = op_histogram("D")
        assert hist.get(INSERT, 0) > 0.02
        assert gen.key_space.inserted > 0
        assert gen.key_space.size == 1000 + gen.key_space.inserted

    def test_workload_e_scans(self):
        hist, _gen = op_histogram("E")
        assert hist[SCAN] > 0.9

    def test_workload_f_rmw(self):
        hist, _gen = op_histogram("F")
        assert 0.4 < hist.get(RMW, 0) < 0.6

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError):
            YcsbMix("broken", read=0.5, update=0.2).validate()


class TestDistributions:
    def test_latest_prefers_recent_keys(self):
        ks = KeySpace(initial=1000)
        gen = YcsbGenerator(WORKLOADS["D"], settings(), SeededRng(3), key_space=ks)
        for _ in range(100):
            gen.next_txn()  # grow the frontier via inserts
        recent = 0
        samples = 0
        frontier = ks.size
        for _ in range(50):
            for kind, row, _l in gen.next_txn():
                if kind == READ:
                    samples += 1
                    if int(row[4:]) > frontier - 100:
                        recent += 1
        assert samples > 0
        assert recent / samples > 0.5  # strongly skewed to the newest keys

    def test_shared_key_space_across_generators(self):
        ks = KeySpace(initial=10)
        g1 = YcsbGenerator(WORKLOADS["D"], settings(n_rows=10), SeededRng(4), key_space=ks)
        g2 = YcsbGenerator(WORKLOADS["D"], settings(n_rows=10), SeededRng(5), key_space=ks)
        keys = set()
        for gen in (g1, g2) * 20:
            for kind, row, _l in gen.next_txn():
                if kind == INSERT:
                    assert row not in keys  # inserts never collide
                    keys.add(row)


class TestDriverIntegration:
    @pytest.fixture(scope="class")
    def cluster(self):
        config = ClusterConfig(seed=107)
        config.workload.n_rows = 3000
        config.workload.n_clients = 8
        config.workload.ops_per_txn = 5
        cluster = SimCluster(config).start()
        cluster.preload()
        cluster.warm_caches()
        return cluster

    @pytest.mark.parametrize("mix", ["A", "B", "C", "F"])
    def test_core_mixes_run_clean(self, cluster, mix):
        driver = WorkloadDriver(cluster, mix=mix)
        result = driver.run(duration=4.0, target_tps=60.0)
        assert result.committed > 100
        assert result.failed == 0

    def test_workload_d_inserts_become_readable(self, cluster):
        driver = WorkloadDriver(cluster, mix="D")
        result = driver.run(duration=4.0, target_tps=60.0)
        assert result.committed > 100
        assert driver._key_space.inserted > 0
        # A freshly inserted key is readable at the latest snapshot.
        handle = driver.handles[0]
        inserted_key = row_key(cluster.config.workload.n_rows)  # first insert

        def read():
            ctx = yield from handle.txn.begin()
            return (yield from handle.txn.read(ctx, "usertable", inserted_key))

        assert cluster.run(read()) is not None

    def test_workload_e_scans_run(self, cluster):
        config = cluster.config
        driver = WorkloadDriver(cluster, mix="E")
        result = driver.run(duration=3.0, target_tps=20.0)
        assert result.committed > 30
        assert result.failed == 0

    def test_unknown_mix_rejected(self, cluster):
        with pytest.raises(ReproError):
            WorkloadDriver(cluster, mix="Z")
