"""Unit tests for workload generators."""

import pytest

from repro.config import WorkloadSettings
from repro.kvstore.keys import row_key
from repro.sim.rng import SeededRng
from repro.workload import READ, UPDATE, TransactionGenerator, make_key_chooser


def settings(**kw):
    base = dict(n_rows=1000, ops_per_txn=10, read_fraction=0.5, distribution="uniform")
    base.update(kw)
    return WorkloadSettings(**base)


class TestKeyChoosers:
    def test_uniform_keys_in_domain(self):
        chooser = make_key_chooser(settings(), SeededRng(1))
        keys = {chooser() for _ in range(2000)}
        assert all(row_key(0) <= k <= row_key(999) for k in keys)
        assert len(keys) > 500  # uniform over 1000 rows

    def test_zipfian_keys_skewed(self):
        chooser = make_key_chooser(
            settings(distribution="zipfian", zipf_theta=0.99), SeededRng(2)
        )
        counts = {}
        for _ in range(5000):
            k = chooser()
            counts[k] = counts.get(k, 0) + 1
        top = max(counts.values())
        assert top > 5000 * 0.02  # the hottest key is genuinely hot
        assert len(counts) < 1000  # far from uniform coverage

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            make_key_chooser(settings(distribution="pareto"), SeededRng(3))

    def test_deterministic_per_seed(self):
        a = make_key_chooser(settings(), SeededRng(7))
        b = make_key_chooser(settings(), SeededRng(7))
        assert [a() for _ in range(100)] == [b() for _ in range(100)]


class TestTransactionGenerator:
    def test_ops_per_txn(self):
        gen = TransactionGenerator(settings(), SeededRng(4))
        txn = gen.next_txn()
        assert len(txn.ops) == 10
        assert txn.n_reads + txn.n_updates == 10

    def test_distinct_rows_within_txn(self):
        gen = TransactionGenerator(settings(n_rows=20), SeededRng(5))
        for _ in range(50):
            txn = gen.next_txn()
            rows = [row for _k, row in txn.ops]
            assert len(set(rows)) == len(rows)

    def test_read_ratio_near_half(self):
        gen = TransactionGenerator(settings(), SeededRng(6))
        reads = sum(t.n_reads for t in (gen.next_txn() for _ in range(500)))
        assert 0.45 < reads / 5000 < 0.55

    def test_read_only_txn_possible_with_full_read_fraction(self):
        gen = TransactionGenerator(settings(read_fraction=1.0), SeededRng(7))
        txn = gen.next_txn()
        assert txn.read_only
        assert all(kind == READ for kind, _row in txn.ops)

    def test_update_only(self):
        gen = TransactionGenerator(settings(read_fraction=0.0), SeededRng(8))
        txn = gen.next_txn()
        assert all(kind == UPDATE for kind, _row in txn.ops)
        assert txn.n_updates == 10
