"""Tests for the durability-verification ledger."""

import pytest

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key
from repro.workload.verify import CommitLedger


def build(seed=161):
    config = ClusterConfig(seed=seed)
    config.workload.n_rows = 2000
    config.kv.n_regions = 4
    config.kv.wal_sync_interval = 300.0
    config.recovery.client_heartbeat_interval = 0.5
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    return cluster


def committed_txn(handle, rows, tag, wait_flush=True):
    def gen():
        ctx = yield from handle.txn.begin()
        for i in rows:
            handle.txn.write(ctx, TABLE, row_key(i), f"{tag}-{i}")
        yield from handle.txn.commit(ctx, wait_flush=wait_flush)
        return ctx

    return gen()


def test_clean_run_verifies(seed=161):
    cluster = build(seed)
    handle = cluster.add_client()
    ledger = CommitLedger()
    for n in range(5):
        cluster.run(ledger.executed(cluster, committed_txn(handle, [n, n + 50], f"t{n}"), TABLE))
    assert len(ledger) == 5
    assert ledger.verify(cluster) == []


def test_verifies_through_server_failure():
    cluster = build(seed=162)
    handle = cluster.add_client()
    ledger = CommitLedger()
    for n in range(4):
        cluster.run(
            ledger.executed(
                cluster,
                committed_txn(handle, list(range(n * 100, n * 100 + 20)), f"f{n}"),
                TABLE,
            )
        )
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)
    assert ledger.verify(cluster) == []


def test_detects_manufactured_loss():
    """The auditor must actually catch losses -- fake one by recording a
    commit that never happened."""
    cluster = build(seed=163)
    handle = cluster.add_client()
    ledger = CommitLedger()
    cluster.run(ledger.executed(cluster, committed_txn(handle, [1], "real"), TABLE))

    from repro.workload.verify import AcknowledgedCommit

    ledger.commits.append(
        AcknowledgedCommit(
            commit_ts=999_999,
            client_id="ghost",
            table=TABLE,
            cells=(("user000000000002", "f", "never-written"),),
        )
    )
    violations = ledger.verify(cluster)
    assert len(violations) == 1
    assert violations[0].row == "user000000000002"
    assert "never-written" in str(violations[0])


def test_read_only_and_unacknowledged_txns_not_recorded():
    cluster = build(seed=164)
    handle = cluster.add_client()
    ledger = CommitLedger()

    def read_only():
        ctx = yield from handle.txn.begin()
        yield from handle.txn.read(ctx, TABLE, row_key(1))
        yield from handle.txn.commit(ctx)
        return ctx

    cluster.run(ledger.executed(cluster, read_only(), TABLE))
    assert len(ledger) == 0


def test_delete_verifies_as_absence():
    cluster = build(seed=165)
    handle = cluster.add_client()
    ledger = CommitLedger()

    def deleter():
        ctx = yield from handle.txn.begin()
        handle.txn.delete(ctx, TABLE, row_key(7))
        yield from handle.txn.commit(ctx, wait_flush=True)
        return ctx

    cluster.run(ledger.executed(cluster, deleter(), TABLE))
    assert ledger.verify(cluster) == []


def test_outcomes_keep_the_complete_history():
    """Aborts and read-only commits stay out of the durability audit but
    land in :attr:`outcomes`, so the ledger accounts for every txn."""
    cluster = build(seed=166)
    handle = cluster.add_client()
    ledger = CommitLedger()

    cluster.run(ledger.executed(cluster, committed_txn(handle, [1, 2], "w"), TABLE))

    def read_only():
        ctx = yield from handle.txn.begin()
        yield from handle.txn.read(ctx, TABLE, row_key(1))
        yield from handle.txn.commit(ctx)
        return ctx

    cluster.run(ledger.executed(cluster, read_only(), TABLE))

    def aborter():
        ctx = yield from handle.txn.begin()
        handle.txn.write(ctx, TABLE, row_key(3), "doomed")
        yield from handle.txn.abort(ctx)
        return ctx

    cluster.run(ledger.executed(cluster, aborter(), TABLE))

    assert len(ledger) == 1  # only the acked writer is audited
    assert ledger.outcome_counts() == {
        "aborted": 1, "committed": 1, "read_only": 1,
    }
    by_outcome = {rec.outcome: rec for rec in ledger.outcomes}
    assert by_outcome["committed"].commit_ts is not None
    assert by_outcome["committed"].n_writes == 2
    assert by_outcome["read_only"].commit_ts is not None
    assert by_outcome["read_only"].n_writes == 0
    assert by_outcome["aborted"].commit_ts is None
    assert by_outcome["aborted"].n_writes == 1
    assert ledger.verify(cluster) == []


def test_record_outcome_alone_skips_the_audit():
    cluster = build(seed=167)
    handle = cluster.add_client()
    ledger = CommitLedger()

    ctx = cluster.run(committed_txn(handle, [5], "solo"))
    ledger.record_outcome(ctx)

    assert len(ledger) == 0
    assert ledger.outcome_counts() == {"committed": 1}
