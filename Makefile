# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-fast test-verbose chaos chaos-disk chaos-kill chaos-tm-shard chaos-ssi check-sweep bench bench-figs bench-paper examples demo clean apidoc

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

# Skip the slow 20-seed chaos sweeps (marked @pytest.mark.slow); the
# quick inner-loop gate for local development.
test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

test-verbose:
	$(PYTHON) -m pytest tests/ -v

chaos:
	$(PYTHON) -m repro chaos --seeds 20

chaos-disk:
	$(PYTHON) -m repro chaos --seeds 20 --disk-faults --json chaos-disk-report.json

# 20-seed sweep with a second crash injected inside each recovery window
# (oracle on by default): the recovery-of-recovery acceptance gate.
chaos-kill:
	mkdir -p artifacts
	$(PYTHON) -m repro chaos --seeds 20 --kill-during-recovery \
		--json artifacts/chaos-kill-report.json \
		--history-dir artifacts/histories-kill

# 20-seed sweep on a 2-shard transaction manager with a kill-a-TM-shard
# injection inside each storm (oracle on by default): the non-blocking
# cross-shard commit acceptance gate -- zero lost commits, SI anomalies,
# invariant violations, or permanently in-doubt transactions.
chaos-tm-shard:
	mkdir -p artifacts
	$(PYTHON) -m repro chaos --seeds 20 --tm-shards 2 \
		--json artifacts/chaos-tm-shard-report.json \
		--history-dir artifacts/histories-tm-shard

# 20-seed sweep under serializable SSI (2-shard TM, kill-a-TM-shard
# injection) with the full serializability oracle on every history: the
# acceptance gate for txn.isolation="ssi" -- zero serialization-graph
# cycles, lost commits, SI anomalies, or in-doubt transactions.
chaos-ssi:
	mkdir -p artifacts
	$(PYTHON) -m repro chaos --seeds 20 --isolation ssi \
		--json artifacts/chaos-ssi-report.json \
		--history-dir artifacts/histories-ssi

# Oracle-backed sweeps with per-seed history artifacts: each seed's
# recorded operation history lands under artifacts/ and can be
# re-audited offline with `python -m repro check <file>`.
check-sweep:
	$(PYTHON) -m repro chaos --seeds 20 \
		--json artifacts/check-sweep.json --history-dir artifacts/histories
	$(PYTHON) -m repro chaos --seeds 20 --disk-faults \
		--json artifacts/check-sweep-disk.json --history-dir artifacts/histories-disk

# Standing benchmark snapshot: commit latency percentiles, recovery
# wall-clock, and simulator event rate, written to BENCH_<n>.json.
bench:
	$(PYTHON) -m repro bench

bench-figs:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/session_store.py
	$(PYTHON) examples/bank_transfers.py
	$(PYTHON) examples/failover_timeline.py
	$(PYTHON) examples/elastic_scaleout.py
	$(PYTHON) examples/ycsb_suite.py

demo:
	$(PYTHON) -m repro demo

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +

apidoc:
	$(PYTHON) tools/gen_api_docs.py
