#!/usr/bin/env python3
"""Failover timeline: a miniature of the paper's Figure 3 experiment.

Runs the YCSB-style transactional workload at a fixed offered load on two
region servers, kills one mid-run, and prints per-second throughput and
response time so you can watch the dip, the recovery, and the block-cache
warmup tail -- without waiting for the full benchmark harness.

Run:  python examples/failover_timeline.py
"""

from repro import ClusterConfig, SimCluster
from repro.metrics import format_table
from repro.workload import WorkloadDriver

DURATION = 60.0
CRASH_AT = 20.0
OFFERED_TPS = 200.0


def main() -> None:
    config = ClusterConfig(seed=3)
    config.workload.n_rows = 50_000
    config.workload.n_clients = 50
    print(f"Running {DURATION:.0f}s at {OFFERED_TPS:.0f} tps offered, "
          f"crashing rs0 at t={CRASH_AT:.0f}s...")
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()

    driver = WorkloadDriver(cluster)
    start = cluster.kernel.now
    cluster.after(CRASH_AT, lambda: cluster.crash_server(0))
    result = driver.run(duration=DURATION, target_tps=OFFERED_TPS)

    rows = []
    tps = dict(result.throughput_ts.rate_series())
    lat = dict(result.latency_ts.mean_series())
    for t in sorted(tps):
        rel = t - start
        rt = lat.get(t)
        rows.append((
            f"{rel:5.0f}",
            f"{tps[t]:7.1f}",
            "-" if rt is None else f"{rt * 1000:8.2f}",
            "<-- crash" if abs(rel - CRASH_AT) < 0.5 else "",
        ))
    print(format_table(
        ["t (s)", "tps", "resp (ms)", ""],
        rows,
        title="Throughput and response time across a server failure",
    ))
    print(f"\nTotals: {result.summary()}")
    rm = cluster.rm_status()
    print(f"Recovery: {rm['server_region_recoveries']} regions replayed, "
          f"{rm['replayed_fragments']} fragments from the TM log")
    survivor = cluster.servers[1]
    print(f"Survivor cache: {len(survivor.cache)} blocks, "
          f"hit rate {survivor.cache.hit_rate:.3f}")


if __name__ == "__main__":
    main()
