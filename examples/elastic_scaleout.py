#!/usr/bin/env python3
"""Elastic scale-out: grow the cluster under load, then lose the newcomer.

The paper's Section 2.1 motivation: "when the existing region servers
become overloaded, new region servers can be added dynamically, thus
allowing for elastic scalability."  This example saturates two region
servers, adds a third live, rebalances regions onto it, shows the
throughput headroom, then crashes the newcomer to demonstrate the recovery
middleware covers dynamically-added servers like any other.

Run:  python examples/elastic_scaleout.py
"""

from repro import ClusterConfig, SimCluster
from repro.metrics import format_table
from repro.workload import WorkloadDriver


def main() -> None:
    config = ClusterConfig(seed=17)
    config.workload.n_rows = 40_000
    config.workload.n_clients = 60
    config.kv.n_regions = 6
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    driver = WorkloadDriver(cluster)

    print("Phase 1: closed loop on 2 region servers...")
    before = driver.run(duration=12.0, warmup=3.0)
    print(f"  {before.summary()}")

    print("\nPhase 2: adding a third machine (rs2 + dn2) and rebalancing...")
    cluster.add_server()
    cluster.run_until(cluster.kernel.now + 1.0)
    moves = cluster.run(cluster.rpc("master", "balance"))
    print(f"  moved {len(moves)} regions: "
          + ", ".join(f"{m['region']}->{m['to']}" for m in moves))
    cluster.warm_caches()  # operators pre-warm after planned moves

    after = driver.run(duration=12.0, warmup=3.0)
    print(f"  {after.summary()}")

    print(format_table(
        ["phase", "tps", "mean (ms)"],
        [
            ("2 servers", f"{before.achieved_tps:.0f}",
             f"{before.latency.mean * 1000:.1f}"),
            ("3 servers", f"{after.achieved_tps:.0f}",
             f"{after.latency.mean * 1000:.1f}"),
        ],
        title="\nElastic scale-out",
    ))
    gain = after.achieved_tps / max(before.achieved_tps, 1)
    print(f"  throughput gain: {gain:.2f}x")

    print("\nPhase 3: crashing the newcomer (rs2) with fresh, unpersisted data...")
    during = None
    cluster.after(3.0, lambda: cluster.crash_server(2))
    during = driver.run(duration=25.0, target_tps=before.achieved_tps * 0.8)
    print(f"  {during.summary()}")
    status = cluster.cluster_status()
    rm = cluster.rm_status()
    print(f"  all regions back online: {all(status['online'].values())}; "
          f"{rm['replayed_fragments']} fragments replayed "
          f"({rm['server_region_recoveries']} regions)")


if __name__ == "__main__":
    main()
