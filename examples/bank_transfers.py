#!/usr/bin/env python3
"""Bank-transfer workload: atomicity and durability under injected failures.

A classic OLTP scenario the paper's introduction motivates: accounts spread
across regions, money moving between them transactionally.  The invariant
-- total balance never changes -- is checked while a region server and a
client are crashed mid-run.  Snapshot-isolation conflicts cause retries;
the recovery middleware replays whatever the failures interrupt.

Run:  python examples/bank_transfers.py
"""

from repro import ClusterConfig, SimCluster, TABLE
from repro.errors import TxnAborted
from repro.kvstore.keys import row_key

N_ACCOUNTS = 2_000
INITIAL_BALANCE = 1_000
N_TRANSFERS = 150


def main() -> None:
    config = ClusterConfig(seed=7)
    config.workload.n_rows = N_ACCOUNTS
    config.kv.wal_sync_interval = 300.0  # store persistence is lazy
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()

    teller = cluster.add_client("teller")
    auditor = cluster.add_client("auditor")
    rng = cluster.kernel.rng.substream("bank")

    def deposit_initial():
        """Give every account its opening balance in chunked transactions."""
        for base in range(0, N_ACCOUNTS, 200):
            def body(ctx, base=base):
                for i in range(base, min(base + 200, N_ACCOUNTS)):
                    teller.txn.write(ctx, TABLE, row_key(i), INITIAL_BALANCE)
                yield from ()

            yield from teller.txn.transaction(body, wait_flush=True)

    print(f"Opening {N_ACCOUNTS} accounts at {INITIAL_BALANCE} each...")
    cluster.run(deposit_initial())

    def transfer(client, src, dst, amount):
        def body(ctx):
            src_balance = yield from client.txn.read(ctx, TABLE, row_key(src))
            dst_balance = yield from client.txn.read(ctx, TABLE, row_key(dst))
            if int(src_balance) < amount:
                # Business-rule abort: transaction() sees the context is no
                # longer active and skips the commit.
                yield from client.txn.abort(ctx)
                return False
            client.txn.write(ctx, TABLE, row_key(src), int(src_balance) - amount)
            client.txn.write(ctx, TABLE, row_key(dst), int(dst_balance) + amount)
            return True

        # Snapshot-isolation conflicts retry once with backoff; a second
        # conflict surfaces as TxnAborted to the caller.
        _ctx, ok = yield from client.txn.transaction(body, retries=1)
        return ok

    def transfer_worker(client, n, counters):
        for _ in range(n):
            src = rng.randrange(N_ACCOUNTS)
            dst = rng.randrange(N_ACCOUNTS)
            if src == dst:
                continue
            amount = rng.randrange(1, 200)
            try:
                ok = yield from transfer(client, src, dst, amount)
                counters["done" if ok else "declined"] += 1
            except TxnAborted:
                counters["conflicts"] += 1
            yield client.node.sleep(0.02)

    counters = {"done": 0, "declined": 0, "conflicts": 0}
    worker = teller.node.spawn(
        transfer_worker(teller, N_TRANSFERS, counters), name="transfers"
    )
    worker.defuse()

    # Crash a region server one second into the run.
    cluster.after(1.0, lambda: cluster.crash_server(0))
    print("Running transfers; crashing rs0 at t+1s...")
    cluster.run_until(cluster.kernel.now + 40.0)
    print(f"  transfers: {counters}")

    def audit():
        """Sum all balances in one (large, read-only) transaction."""
        def body(ctx):
            total = 0
            for i in range(N_ACCOUNTS):
                value = yield from auditor.txn.read(ctx, TABLE, row_key(i))
                total += int(value)
            return total

        _ctx, total = yield from auditor.txn.transaction(body)
        return total

    print("Auditing total balance after recovery...")
    total = cluster.run(audit())
    expected = N_ACCOUNTS * INITIAL_BALANCE
    print(f"  expected {expected}, found {total}: "
          f"{'INVARIANT HOLDS' if total == expected else 'MONEY LOST/CREATED'}")
    rm = cluster.rm_status()
    print(f"  (recovery manager replayed {rm['replayed_fragments']} fragments, "
          f"{rm['replayed_write_sets']} whole write-sets)")


if __name__ == "__main__":
    main()
