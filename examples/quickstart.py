#!/usr/bin/env python3
"""Quickstart: transactions on the simulated store, and a server crash that
loses nothing.

Builds the paper's deployment (two region servers over a replicated
filesystem, an independent transaction manager with a recovery log, and the
failure-recovery middleware), commits a few transactions, kills a region
server with unpersisted data, and shows every commit surviving.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key


def main() -> None:
    config = ClusterConfig(seed=42)
    config.workload.n_rows = 10_000
    # Make the store's own persistence lazy, so the crash below would lose
    # data without the recovery middleware.
    config.kv.wal_sync_interval = 300.0

    print("Booting cluster (2 region servers, TM + recovery manager)...")
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    client = cluster.add_client("app")

    def transfer(ctx_rows, tag):
        """One transaction writing `tag` into several rows."""
        def body(ctx):
            for i in ctx_rows:
                old = yield from client.txn.read(ctx, TABLE, row_key(i))
                client.txn.write(ctx, TABLE, row_key(i), f"{tag} (was {old})")

        # The transaction() helper wraps begin/commit and aborts on error.
        ctx, _ = yield from client.txn.transaction(body, retries=2)
        return ctx

    print("Committing three transactions...")
    contexts = []
    for n in range(3):
        ctx = cluster.run(transfer(range(n * 10, n * 10 + 5), f"txn{n}"))
        contexts.append(ctx)
        print(f"  txn{n}: commit_ts={ctx.commit_ts} state={ctx.state}")

    print("\nCrashing region server rs0 (memstore + WAL buffer lost)...")
    cluster.crash_server(0)
    cluster.run_until(cluster.kernel.now + 15.0)

    status = cluster.cluster_status()
    print(f"  master handled {status['failures_handled']} failure(s); "
          f"all regions online: {all(status['online'].values())}")
    rm = cluster.rm_status()
    print(f"  recovery manager replayed {rm['replayed_fragments']} "
          f"write-set fragment(s) from the TM log")

    print("\nReading everything back after recovery:")
    def read(i):
        def body(ctx):
            return (yield from client.txn.read(ctx, TABLE, row_key(i)))

        _ctx, value = yield from client.txn.transaction(body)
        return value

    ok = True
    for n in range(3):
        for i in range(n * 10, n * 10 + 5):
            value = cluster.run(read(i))
            if not (value or "").startswith(f"txn{n}"):
                ok = False
                print(f"  row {i}: LOST (got {value!r})")
    print("  every committed write survived the crash!" if ok else "  DATA LOSS")

    status = cluster.status("tm")
    commits = status["metrics"]["counters"]["commits"]
    print(f"\nTM: {commits} commits, log length {status['log_length']} "
          f"(truncated below ts {status['log_truncated_below']})")

    # The unified metrics snapshot: per-component registries plus the
    # commit-path latency breakdown measured by the span tracer.
    from repro.metrics import spans_table

    snapshot = cluster.metrics_snapshot()
    print()
    print(spans_table(snapshot["spans"]))
    breakdown = snapshot["commit_breakdown"]
    if breakdown["end_to_end"]:
        print(f"commit p50: {breakdown['end_to_end']['p50'] * 1000:.2f} ms "
              f"end-to-end; stage p50 sum "
              f"{breakdown['stage_p50_sum'] * 1000:.2f} ms")


if __name__ == "__main__":
    main()
