#!/usr/bin/env python3
"""Web session store: client failure with in-flight committed work.

A second scenario from the paper's motivation: a fleet of stateless web
front-ends (key-value clients) writing session state transactionally.  One
front-end crashes right after its commits are durable in the TM log but
before the write-sets reach the store.  The recovery manager detects the
dead client through missed heartbeats and replays its committed sessions,
so another front-end can take over every user.

Run:  python examples/session_store.py
"""

from repro import ClusterConfig, SimCluster, TABLE
from repro.kvstore.keys import row_key

N_SESSIONS = 40


def main() -> None:
    config = ClusterConfig(seed=99)
    config.workload.n_rows = 5_000
    config.recovery.client_heartbeat_interval = 0.5
    config.recovery.missed_heartbeat_limit = 3
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()

    frontend_a = cluster.add_client("frontend-a")
    frontend_b = cluster.add_client("frontend-b")

    committed = []

    def write_sessions_then_die():
        """Commit session updates, then crash before flushing them."""
        for s in range(N_SESSIONS):
            ctx = yield from frontend_a.txn.begin()
            frontend_a.txn.write(
                ctx, TABLE, row_key(s), f"session-{s}:cart=3items:user=u{s}"
            )
            yield from frontend_a.txn.commit(ctx)  # durable in the TM log
            committed.append(ctx.commit_ts)
        # Power cut: every background flush on this machine dies with it.
        frontend_a.node.crash()

    print(f"frontend-a committing {N_SESSIONS} session updates, then crashing...")
    proc = cluster.kernel.process(write_sessions_then_die())
    proc.defuse()
    cluster.run_until(cluster.kernel.now + 1.0)
    print(f"  committed {len(committed)} txns "
          f"(ts {committed[0]}..{committed[-1]}), client is now dead")

    print("Waiting for heartbeat-based failure detection + replay...")
    cluster.run_until(cluster.kernel.now + 6.0)
    rm = cluster.rm_status()
    print(f"  client recoveries: {rm['client_recoveries']}, "
          f"write-sets replayed: {rm['replayed_write_sets']}")

    def take_over(s):
        ctx = yield from frontend_b.txn.begin()
        value = yield from frontend_b.txn.read(ctx, TABLE, row_key(s))
        return value

    print("frontend-b taking over the sessions:")
    lost = 0
    for s in range(N_SESSIONS):
        value = cluster.run(take_over(s))
        if not (value or "").startswith(f"session-{s}"):
            lost += 1
    if lost:
        print(f"  {lost}/{N_SESSIONS} sessions LOST")
    else:
        print(f"  all {N_SESSIONS} committed sessions recovered "
              f"-- no user lost their cart")


if __name__ == "__main__":
    main()
