#!/usr/bin/env python3
"""Run the standard YCSB core workloads (A-F) plus the paper's mix.

One cluster configuration per run; every mix gets a fresh, identically
seeded cluster so the comparison is apples-to-apples.  Shows the library
working as a general transactional store benchmark harness, not just a
single-figure reproduction.

Run:  python examples/ycsb_suite.py
"""

from repro import ClusterConfig, SimCluster
from repro.metrics import format_table
from repro.workload import WORKLOADS, WorkloadDriver

DURATION = 12.0
TARGET_TPS = 150.0


def run_mix(name: str) -> dict:
    config = ClusterConfig(seed=31)
    config.workload.n_rows = 30_000
    config.workload.n_clients = 30
    config.workload.ops_per_txn = 10
    cluster = SimCluster(config).start()
    cluster.preload()
    cluster.warm_caches()
    driver = WorkloadDriver(cluster, mix=None if name == "paper" else name)
    # Workload E's scans are far heavier per op; let it run closed-loop.
    target = None if name == "E" else TARGET_TPS
    result = driver.run(duration=DURATION, target_tps=target, warmup=2.0)
    summary = result.summary()
    return {
        "mix": name,
        "tps": summary["tps"],
        "mean_ms": summary["mean_ms"],
        "p99_ms": summary["p99_ms"],
        "aborted": summary["aborted"],
    }


def main() -> None:
    print(f"Running YCSB core workloads ({DURATION:.0f}s each, "
          f"{TARGET_TPS:.0f} tps offered, E closed-loop)...")
    rows = []
    for name in ("A", "B", "C", "D", "E", "F", "paper"):
        point = run_mix(name)
        mix = WORKLOADS[name]
        description = ", ".join(
            f"{int(p * 100)}% {kind}"
            for kind, p in (
                ("read", mix.read), ("update", mix.update),
                ("insert", mix.insert), ("scan", mix.scan), ("rmw", mix.rmw),
            )
            if p > 0
        )
        rows.append((
            name, description, f"{point['tps']:.0f}",
            f"{point['mean_ms']:.1f}", f"{point['p99_ms']:.1f}",
            point["aborted"],
        ))
        print(f"  {name}: done")
    print()
    print(format_table(
        ["mix", "operations", "tps", "mean (ms)", "p99 (ms)", "aborts"],
        rows,
        title="YCSB core workloads on the transactional store",
    ))


if __name__ == "__main__":
    main()
